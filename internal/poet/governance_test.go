package poet

// Resource-governance tests for the collector and wire server: bounded
// retention of the linearization log (SetRetention), admission control
// (SetAdmissionLimit / ErrOverloaded), and the server's load-shedding
// path that parks overloading reporters instead of dropping events.

import (
	"errors"
	"testing"
	"time"

	"ocep/internal/event"
)

func reportN(t *testing.T, c *Collector, trace string, from, to int) {
	t.Helper()
	for s := from; s <= to; s++ {
		if err := c.Report(RawEvent{Trace: trace, Seq: s, Kind: event.KindInternal, Type: "x"}); err != nil {
			t.Fatalf("report %s/%d: %v", trace, s, err)
		}
	}
}

func TestRetentionTrimsLogAndStore(t *testing.T) {
	c := NewCollector()
	if err := c.SetRetention(100); err != nil {
		t.Fatal(err)
	}
	reportN(t, c, "p0", 1, 600)
	reportN(t, c, "p1", 1, 600)
	if got := c.Delivered(); got != 1200 {
		t.Fatalf("Delivered = %d, want 1200 (retention must not change delivery)", got)
	}
	rs := c.RetentionStats()
	if rs.Evicted == 0 || rs.StoreCompacted == 0 {
		t.Fatalf("nothing evicted under a 100-event bound: %+v", rs)
	}
	if rs.Retained > 100+100/4 {
		t.Fatalf("retained %d events, bound is 125", rs.Retained)
	}
	if rs.Retained != len(c.Ordered()) {
		t.Fatalf("Retained %d != len(Ordered) %d", rs.Retained, len(c.Ordered()))
	}
	if rs.TrimmedFrom+rs.Retained != 1200 {
		t.Fatalf("TrimmedFrom %d + Retained %d != 1200", rs.TrimmedFrom, rs.Retained)
	}
	if got := c.Store().RetainedEvents(); got >= 1200 {
		t.Fatalf("store still holds all %d events", got)
	}
	// Acks still reflect full ingestion: retention must never make a
	// reporter retransmit.
	if got := c.AckFor("p0"); got != 600 {
		t.Fatalf("AckFor(p0) = %d, want 600", got)
	}
}

// TestRetentionPreservesCausality: a receive delivered long after its
// send must still merge the send's vector clock, so retention may never
// release an unmatched send from the store.
func TestRetentionPreservesCausality(t *testing.T) {
	run := func(keep int) *event.Event {
		c := NewCollector()
		if keep > 0 {
			if err := c.SetRetention(keep); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Report(RawEvent{Trace: "p0", Seq: 1, Kind: event.KindSend, Type: "s", MsgID: 1}); err != nil {
			t.Fatal(err)
		}
		// Hundreds of internals bury the open send far behind any
		// retention watermark.
		reportN(t, c, "p0", 2, 400)
		reportN(t, c, "p1", 1, 400)
		if err := c.Report(RawEvent{Trace: "p1", Seq: 401, Kind: event.KindReceive, Type: "r", MsgID: 1}); err != nil {
			t.Fatal(err)
		}
		ord := c.Ordered()
		return ord[len(ord)-1]
	}
	free := run(0)
	kept := run(16)
	if kept.Kind != event.KindReceive || !kept.VC.Equal(free.VC) {
		t.Fatalf("receive clock diverged under retention: %s vs %s", kept.VC, free.VC)
	}
	if kept.Partner != free.Partner {
		t.Fatalf("partner diverged under retention: %s vs %s", kept.Partner, free.Partner)
	}
}

// TestRetentionOpenSendPinsStore: the open send stays queryable however
// far the log trims; once matched it becomes evictable.
func TestRetentionOpenSendPinsStore(t *testing.T) {
	c := NewCollector()
	if err := c.SetRetention(32); err != nil {
		t.Fatal(err)
	}
	if err := c.Report(RawEvent{Trace: "p0", Seq: 1, Kind: event.KindSend, Type: "s", MsgID: 9}); err != nil {
		t.Fatal(err)
	}
	reportN(t, c, "p0", 2, 300)
	sendID := event.ID{Trace: 0, Index: 1}
	if _, ok := c.GetEvent(sendID); !ok {
		t.Fatal("open send was compacted away")
	}
	// Match it, then push more traffic past the watermark: now it may go.
	if err := c.Report(RawEvent{Trace: "p1", Seq: 1, Kind: event.KindReceive, Type: "r", MsgID: 9}); err != nil {
		t.Fatal(err)
	}
	reportN(t, c, "p0", 301, 600)
	if _, ok := c.GetEvent(sendID); ok {
		t.Fatal("matched send still pinned after the backlog moved on")
	}
}

func TestRetentionIncompatibilities(t *testing.T) {
	c := NewCollector()
	c.RetainLog()
	if err := c.SetRetention(10); err == nil {
		t.Fatal("SetRetention accepted a RetainLog collector")
	}
	c2 := NewCollector()
	if err := c2.SetRetention(10); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(c2, DurableOptions{Dir: t.TempDir()}); err == nil {
		t.Fatal("OpenDurable accepted a retaining collector")
	}
	c3 := NewCollector()
	d, err := OpenDurable(c3, DurableOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := c3.SetRetention(10); err == nil {
		t.Fatal("SetRetention accepted a durable collector")
	}
}

func TestRetentionRejectsEvictedReplayOffset(t *testing.T) {
	c := NewCollector()
	if err := c.SetRetention(50); err != nil {
		t.Fatal(err)
	}
	reportN(t, c, "p0", 1, 400)
	rs := c.RetentionStats()
	if rs.TrimmedFrom == 0 {
		t.Fatal("fixture never trimmed")
	}
	if _, err := c.SubscribeBatchReplayFrom(0, func([]*event.Event) {}, AsyncOptions{}); err == nil {
		t.Fatal("replay from an evicted offset was accepted")
	}
	// The oldest retained offset replays the exact retained suffix.
	var got []*event.Event
	sub, err := c.SubscribeBatchReplayFrom(rs.TrimmedFrom, func(b []*event.Event) { got = append(got, b...) }, AsyncOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sub.Flush()
	sub.Cancel()
	if len(got) != rs.Retained {
		t.Fatalf("replayed %d events, want the %d retained", len(got), rs.Retained)
	}
	if got[0].ID.Index != 400-rs.Retained+1 {
		t.Fatalf("replay starts at index %d, want %d", got[0].ID.Index, 400-rs.Retained+1)
	}
}

func TestAdmissionLimit(t *testing.T) {
	c := NewCollector()
	c.SetAdmissionLimit(4)
	// Head receive waits for a send that has not arrived: it buffers, and
	// events behind it pile up to the cap.
	if err := c.Report(RawEvent{Trace: "p0", Seq: 1, Kind: event.KindReceive, Type: "r", MsgID: 5}); err != nil {
		t.Fatal(err)
	}
	for s := 2; s <= 4; s++ {
		if err := c.Report(RawEvent{Trace: "p0", Seq: s, Kind: event.KindInternal, Type: "x"}); err != nil {
			t.Fatalf("report under the cap: %v", err)
		}
	}
	err := c.Report(RawEvent{Trace: "p0", Seq: 5, Kind: event.KindInternal, Type: "x"})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("5th buffered event: got %v, want ErrOverloaded", err)
	}
	// A second trace is not affected by p0's backlog.
	if err := c.Report(RawEvent{Trace: "p1", Seq: 1, Kind: event.KindInternal, Type: "x"}); err != nil {
		t.Fatalf("independent trace refused: %v", err)
	}
	// The unblocking send is the delivery head of its own trace; once it
	// lands, p0's backlog drains and the refused event is admitted.
	if err := c.Report(RawEvent{Trace: "p2", Seq: 1, Kind: event.KindSend, Type: "s", MsgID: 5}); err != nil {
		t.Fatal(err)
	}
	if err := c.Report(RawEvent{Trace: "p0", Seq: 5, Kind: event.KindInternal, Type: "x"}); err != nil {
		t.Fatalf("retransmit after drain refused: %v", err)
	}
	if !c.Drained() || c.Delivered() != 7 {
		t.Fatalf("drained=%v delivered=%d, want true/7", c.Drained(), c.Delivered())
	}
}

// TestAdmissionNeverRefusesDeliveryHead: the event that would drain the
// backlog must be admitted even when the trace is at its cap, or the
// overload could never resolve.
func TestAdmissionNeverRefusesDeliveryHead(t *testing.T) {
	c := NewCollector()
	c.SetAdmissionLimit(2)
	// Seqs 2 and 3 buffer behind the missing seq 1, filling the cap.
	for s := 2; s <= 3; s++ {
		if err := c.Report(RawEvent{Trace: "p0", Seq: s, Kind: event.KindInternal, Type: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Report(RawEvent{Trace: "p0", Seq: 4, Kind: event.KindInternal, Type: "x"}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-cap buffering: got %v, want ErrOverloaded", err)
	}
	if err := c.Report(RawEvent{Trace: "p0", Seq: 1, Kind: event.KindInternal, Type: "x"}); err != nil {
		t.Fatalf("delivery head refused at the cap: %v", err)
	}
	if c.Delivered() != 3 {
		t.Fatalf("delivered %d, want 3", c.Delivered())
	}
}

// TestServerShedsOverload drives the wire path into admission refusal
// and checks the server parks the reporter (shedding) instead of
// failing it, then recovers once the blocking send arrives.
func TestServerShedsOverload(t *testing.T) {
	c := NewCollector()
	c.SetAdmissionLimit(3)
	s := NewServer(c, t.Logf)
	s.SetOverloadWait(10 * time.Second)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	})

	rep, err := DialReporter(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	// Head receive waits for a send nobody has reported; the events
	// behind it overflow the 3-event admission cap, so the 5th report
	// trips the server's shed path.
	if err := rep.Report(RawEvent{Trace: "p0", Seq: 1, Kind: event.KindReceive, Type: "r", MsgID: 1}); err != nil {
		t.Fatal(err)
	}
	for seq := 2; seq <= 6; seq++ {
		if err := rep.Report(RawEvent{Trace: "p0", Seq: seq, Kind: event.KindInternal, Type: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return s.Shedding() })
	if st := s.WireStats(); st.LoadSheds == 0 {
		t.Fatalf("shedding but LoadSheds = %d", st.LoadSheds)
	}

	// A second reporter supplies the missing send: the backlog drains,
	// the parked connection resumes, and every event lands exactly once.
	rep2, err := DialReporter(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rep2.Close()
	if err := rep2.Report(RawEvent{Trace: "p1", Seq: 1, Kind: event.KindSend, Type: "s", MsgID: 1}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return c.Delivered() == 7 && c.Drained() })
	waitFor(t, func() bool { return !s.Shedding() })
	if err := rep.Flush(); err != nil {
		t.Fatalf("parked reporter failed: %v", err)
	}
}

// TestServerOverloadWaitExpires: when the backlog never drains, the
// parked connection fails with the collector's overload error instead
// of hanging forever.
func TestServerOverloadWaitExpires(t *testing.T) {
	c := NewCollector()
	c.SetAdmissionLimit(1)
	s := NewServer(c, t.Logf)
	s.SetOverloadWait(50 * time.Millisecond)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })

	rep, err := DialReporter(addr, WithReporterReconnect(0))
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if err := rep.Report(RawEvent{Trace: "p0", Seq: 1, Kind: event.KindReceive, Type: "r", MsgID: 1}); err != nil {
		t.Fatal(err)
	}
	// Seq 2 fills the cap; seq 3 trips the shed path, whose wait expires.
	_ = rep.Report(RawEvent{Trace: "p0", Seq: 2, Kind: event.KindInternal, Type: "x"})
	_ = rep.Report(RawEvent{Trace: "p0", Seq: 3, Kind: event.KindInternal, Type: "x"})
	deadline := time.Now().Add(5 * time.Second)
	for rep.Err() == nil && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if err := rep.Err(); err == nil {
		t.Fatal("reporter never observed the overload failure")
	}
}
