package poet

import (
	"fmt"
	"sync"

	"ocep/internal/event"
	"ocep/internal/telemetry"
)

// This file implements the asynchronous fan-out delivery pipeline: each
// batch subscriber owns a bounded queue fed by the collector's delivery
// loop and drained, in batches, by a dedicated consumer goroutine. The
// linearization order is preserved per subscriber (the queue is FIFO and
// has a single consumer), so every monitor still observes a causally
// consistent stream; only the coupling between ingestion and monitor
// evaluation is removed.
//
// Because consumers run outside the collector's lock, they must never
// observe collector-side mutation of published events. Two consequences
// shape the implementation:
//
//   - The queue stores a private shallow copy of every event. The vector
//     clock is immutable after delivery and stays shared; the copy exists
//     because the collector back-patches a send's Partner field when the
//     matching receive is delivered, which would race with a concurrent
//     reader of the original.
//   - A receive-like copy carries its Partner (assigned before
//     publication); consumers that need the send side's Partner re-apply
//     the back-patch against their own copies (core.Matcher.Feed does
//     this when it owns its store, as does the TCP wire client).

// BackpressurePolicy selects what the collector does when a batch
// subscriber's queue is full.
type BackpressurePolicy int

const (
	// BackpressureBlock makes Report wait (after releasing the collector
	// lock, so handlers and other readers keep running) until the slow
	// subscriber drains back under its queue depth. No event is lost;
	// ingestion is throttled to the slowest blocking subscriber.
	BackpressureBlock BackpressurePolicy = iota
	// BackpressureDrop discards the event for that subscriber and
	// increments its Dropped counter. Ingestion never stalls; the
	// subscriber's stream has gaps, so this policy is only for consumers
	// that tolerate a gapped stream. A matcher-backed monitor is not one
	// of them — its store requires each trace's events to arrive
	// gap-free, so ocep.NewMonitor rejects this policy, and the TCP
	// server disconnects a monitor connection at the first drop rather
	// than stream past the gap.
	BackpressureDrop
)

func (p BackpressurePolicy) String() string {
	switch p {
	case BackpressureBlock:
		return "block"
	case BackpressureDrop:
		return "drop"
	}
	return "unknown"
}

// Default queue sizing; see AsyncOptions.
const (
	DefaultQueueDepth = 1024
	DefaultMaxBatch   = 256
)

// AsyncOptions configures one batch subscription.
type AsyncOptions struct {
	// QueueDepth bounds the subscriber's delivery queue (default
	// DefaultQueueDepth). Under BackpressureBlock the bound is soft: a
	// Report that finds the queue full still enqueues (delivery cascades
	// are atomic) and then waits for the drain, so the instantaneous
	// depth can exceed QueueDepth by the cascade length.
	QueueDepth int
	// MaxBatch caps the events handed to the handler per call (default
	// DefaultMaxBatch). Larger batches amortize handoff overhead; smaller
	// ones bound handler latency.
	MaxBatch int
	// Policy selects the full-queue behaviour.
	Policy BackpressurePolicy
	// OnTrace, when non-nil, is called on the consumer goroutine before
	// the first event of each trace is handed over, with the trace's
	// collector ID and registered name — the in-process analogue of the
	// wire protocol's trace announcements. Replayed traces are announced
	// too.
	OnTrace func(t event.TraceID, name string)
}

func (o AsyncOptions) norm() AsyncOptions {
	if o.QueueDepth <= 0 {
		o.QueueDepth = DefaultQueueDepth
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = DefaultMaxBatch
	}
	return o
}

// BatchHandler consumes one cut batch of the delivery stream, in
// linearization order. It runs on the subscription's own goroutine, never
// under the collector's lock: unlike a synchronous Handler it may call
// the collector's and its monitor's read methods freely.
type BatchHandler func(batch []*event.Event)

// DeliveryStats are one batch subscription's cumulative counters.
type DeliveryStats struct {
	// Enqueued counts events accepted into the queue.
	Enqueued int
	// Handled counts events the handler has consumed.
	Handled int
	// Dropped counts events discarded under BackpressureDrop.
	Dropped int
	// Batches counts handler invocations.
	Batches int
	// Queued is the current queue depth (Enqueued - Handled).
	Queued int
	// MaxQueued is the high-water mark of the queue depth.
	MaxQueued int
}

// traceAnn is a pending trace announcement for one queue.
type traceAnn struct {
	id   event.TraceID
	name string
}

// queueMetrics are the delivery-pipeline instruments shared by every
// queue of one collector (the counters aggregate over subscribers;
// per-subscriber numbers remain available via DeliveryStats). All nil
// when the collector is uninstrumented — each write is a nil-safe
// no-op. A queue copies the struct at creation, so instrument before
// subscribing.
type queueMetrics struct {
	enqueued  *telemetry.Counter
	handled   *telemetry.Counter
	dropped   *telemetry.Counter
	batches   *telemetry.Counter
	batchSize *telemetry.Histogram
}

// queue is one subscriber's bounded delivery queue: multiple producers
// (Report calls, under the collector lock), one consumer goroutine.
type queue struct {
	handler  BatchHandler
	onTrace  func(event.TraceID, string)
	depth    int
	maxBatch int
	policy   BackpressurePolicy
	tel      queueMetrics

	mu   sync.Mutex
	cond *sync.Cond // broadcast on enqueue, batch completion, and close
	buf  []*event.Event
	anns []traceAnn
	// announced[t] marks traces whose announcement is queued or done.
	announced []bool
	enqueued  int
	handled   int
	dropped   int
	batches   int
	maxQueued int
	closed    bool
	done      chan struct{}
}

func newQueue(h BatchHandler, opts AsyncOptions, tel queueMetrics) *queue {
	opts = opts.norm()
	q := &queue{
		handler:  h,
		onTrace:  opts.OnTrace,
		depth:    opts.QueueDepth,
		maxBatch: opts.MaxBatch,
		policy:   opts.Policy,
		tel:      tel,
		done:     make(chan struct{}),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues a private copy of e. Called with the collector lock held
// (name lookups on the collector store are only safe there); the queue
// has its own lock, so the critical section is short and never blocks.
func (q *queue) push(e *event.Event, name string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	// Announce the trace even when the event itself is dropped: names are
	// metadata, and a later surviving event of the trace must match
	// process attributes correctly.
	annAdded := false
	if t := int(e.ID.Trace); q.onTrace != nil {
		for t >= len(q.announced) {
			q.announced = append(q.announced, false)
		}
		if !q.announced[t] {
			q.announced[t] = true
			q.anns = append(q.anns, traceAnn{e.ID.Trace, name})
			annAdded = true
		}
	}
	if q.policy == BackpressureDrop && len(q.buf) >= q.depth {
		q.dropped++
		q.tel.dropped.Inc()
		if annAdded {
			// The announcement must still reach the consumer even though
			// its event was dropped.
			q.cond.Broadcast()
		}
		return
	}
	cp := *e
	q.buf = append(q.buf, &cp)
	q.enqueued++
	q.tel.enqueued.Inc()
	if len(q.buf) > q.maxQueued {
		q.maxQueued = len(q.buf)
	}
	q.cond.Broadcast()
}

// overDepth reports whether a blocking producer should wait for this
// queue. Called under q.mu's own locking.
func (q *queue) overDepth() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.policy == BackpressureBlock && !q.closed && len(q.buf) > q.depth
}

// waitSpace blocks until the queue is back at or under its depth (or
// closed). Must be called WITHOUT the collector lock held.
func (q *queue) waitSpace() {
	q.mu.Lock()
	defer q.mu.Unlock()
	for !q.closed && len(q.buf) > q.depth {
		q.cond.Wait()
	}
}

// run is the consumer loop: cut a batch, hand it over, repeat. On close
// it drains the remaining buffer — and any pending trace announcements —
// before exiting, so Close is a deterministic end state: every accepted
// event has been handled and every announced trace has reached OnTrace.
// Announcements also wake the consumer on their own: a trace whose first
// event was dropped under BackpressureDrop must not wait for an
// unrelated later event (or the close) to be announced.
func (q *queue) run() {
	defer close(q.done)
	for {
		q.mu.Lock()
		for len(q.buf) == 0 && len(q.anns) == 0 && !q.closed {
			q.cond.Wait()
		}
		if len(q.buf) == 0 && len(q.anns) == 0 && q.closed {
			q.mu.Unlock()
			return
		}
		n := len(q.buf)
		if n > q.maxBatch {
			n = q.maxBatch
		}
		batch := make([]*event.Event, n)
		copy(batch, q.buf[:n])
		rest := copy(q.buf, q.buf[n:])
		for i := rest; i < len(q.buf); i++ {
			q.buf[i] = nil
		}
		q.buf = q.buf[:rest]
		anns := q.anns
		q.anns = nil
		q.mu.Unlock()

		for _, a := range anns {
			q.onTrace(a.id, a.name)
		}
		if n > 0 {
			q.handler(batch)
			q.tel.handled.Add(int64(n))
			q.tel.batches.Inc()
			q.tel.batchSize.Observe(int64(n))
		}

		q.mu.Lock()
		q.handled += n
		if n > 0 {
			q.batches++
		}
		q.cond.Broadcast()
		q.mu.Unlock()
	}
}

// flush blocks until every event enqueued before the call has been
// handled. Must not be called from the subscription's own handler.
func (q *queue) flush() {
	q.mu.Lock()
	defer q.mu.Unlock()
	target := q.enqueued
	for q.handled < target {
		q.cond.Wait()
	}
}

// close stops the queue: no further events are accepted, the consumer
// drains what is buffered and exits. Idempotent; blocks until the
// consumer goroutine has finished.
func (q *queue) close() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		q.cond.Broadcast()
	}
	q.mu.Unlock()
	<-q.done
}

func (q *queue) stats() DeliveryStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return DeliveryStats{
		Enqueued:  q.enqueued,
		Handled:   q.handled,
		Dropped:   q.dropped,
		Batches:   q.batches,
		Queued:    len(q.buf),
		MaxQueued: q.maxQueued,
	}
}

// SubscribeBatch registers an asynchronous batch subscriber: deliveries
// are enqueued (as private event copies) and consumed by a dedicated
// goroutine that invokes h with batches cut from the queue. Events
// delivered before the subscription are not replayed; use
// SubscribeBatchReplay for a complete linearization. Cancel the
// subscription (or Close the collector) to stop the goroutine; both drain
// the queue first.
func (c *Collector) SubscribeBatch(h BatchHandler, opts AsyncOptions) *Subscription {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.subscribeBatchLocked(h, opts, -1)
}

// SubscribeBatchReplay atomically seeds the queue with every
// already-delivered event and then registers the subscription, so the
// consumer observes one complete, gap-free linearization no matter when
// it joins. The replayed backlog is exempt from the queue depth (it is
// enqueued in one atomic step); backpressure applies from the first live
// delivery on. Under SetRetention only the retained suffix is replayed —
// consumers that need the full stream from event 0 (a matcher store
// does) must use SubscribeBatchReplayFrom, which rejects an evicted
// offset instead of handing over a gapped stream.
func (c *Collector) SubscribeBatchReplay(h BatchHandler, opts AsyncOptions) *Subscription {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.subscribeBatchLocked(h, opts, 0)
}

// SubscribeBatchReplayFrom is SubscribeBatchReplay for a resuming
// consumer: only the linearization suffix from offset on (the number of
// events the consumer has already observed) is replayed. It fails when
// offset exceeds the delivered count — the consumer is ahead of this
// collector, which means it is talking to a different (e.g. restarted)
// instance and must not be handed a stream with a silent gap — and when
// offset falls below the retention trim point (SetRetention evicted the
// requested suffix; replaying past the hole would be an equally silent
// gap).
func (c *Collector) SubscribeBatchReplayFrom(offset int, h BatchHandler, opts AsyncOptions) (*Subscription, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if offset < 0 || offset > c.trimmedFrom+len(c.order) {
		return nil, fmt.Errorf("poet: resume offset %d out of range (delivered %d)", offset, c.trimmedFrom+len(c.order))
	}
	if offset < c.trimmedFrom {
		return nil, fmt.Errorf("poet: resume offset %d was evicted by retention (oldest retained event is %d)", offset, c.trimmedFrom)
	}
	return c.subscribeBatchLocked(h, opts, offset-c.trimmedFrom), nil
}

// subscribeBatchLocked registers a batch subscription, replaying the
// linearization from replayFrom (replayFrom == delivered count means no
// replay; use a negative value to skip replay entirely).
func (c *Collector) subscribeBatchLocked(h BatchHandler, opts AsyncOptions, replayFrom int) *Subscription {
	q := newQueue(h, opts, c.tel.queues)
	if replayFrom >= 0 {
		// Seeding bypasses the drop policy: the backlog is part of the
		// atomic replay contract.
		saved := q.policy
		q.policy = BackpressureBlock
		for _, e := range c.order[replayFrom:] {
			q.push(e, c.store.TraceName(e.ID.Trace))
		}
		q.policy = saved
	}
	id := c.nextHandler
	c.nextHandler++
	if c.asyncs == nil {
		c.asyncs = make(map[int]*queue)
	}
	c.asyncs[id] = q
	go q.run()
	return &Subscription{c: c, id: id, q: q}
}

// Flush blocks until every async subscriber has handled everything
// delivered before the call. Synchronous handlers need no flushing (they
// run on the delivery path). Must not be called from a handler.
func (c *Collector) Flush() {
	for _, q := range c.asyncQueues() {
		q.flush()
	}
}

// Close cancels every async subscription, draining each queue and
// stopping its consumer goroutine. Synchronous subscriptions and the
// collector's ingestion state are untouched; reporting may continue.
// Idempotent.
func (c *Collector) Close() {
	c.mu.Lock()
	queues := make([]*queue, 0, len(c.asyncs))
	for id, q := range c.asyncs {
		queues = append(queues, q)
		delete(c.asyncs, id)
	}
	c.mu.Unlock()
	for _, q := range queues {
		q.close()
	}
}

// asyncQueues snapshots the registered queues outside the collector lock.
func (c *Collector) asyncQueues() []*queue {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*queue, 0, len(c.asyncs))
	for _, q := range c.asyncs {
		out = append(out, q)
	}
	return out
}
