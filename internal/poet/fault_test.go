package poet

// Fault-injection tests for the v2 wire layer: every test routes the
// TCP session through a faultnet proxy and asserts the exactly-once
// contract — no event lost, none double-delivered — across resets,
// partial writes, stalls and dead peers.

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
	"time"

	"ocep/internal/event"
	"ocep/internal/faultnet"
)

// startFaultServer starts a server with fast wire timers (so faults and
// recoveries play out in milliseconds) and a proxy in front of it.
func startFaultServer(t *testing.T) (*Collector, *Server, *faultnet.Proxy) {
	t.Helper()
	c := NewCollector()
	s := NewServer(c, t.Logf)
	s.SetWireTiming(10*time.Millisecond, 20*time.Millisecond, 2*time.Second)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	p, err := faultnet.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	return c, s, p
}

// fastReporter dials through the proxy with an aggressive reconnect
// schedule so outages resolve quickly under test.
func fastReporter(t *testing.T, p *faultnet.Proxy) *Reporter {
	t.Helper()
	rep, err := DialReporter(p.Addr(),
		WithReporterBackoff(2*time.Millisecond, 50*time.Millisecond),
		WithReporterHeartbeat(20*time.Millisecond),
		WithReporterReconnect(10*time.Second),
		WithReporterLog(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rep.Close() })
	return rep
}

// TestReporterSurvivesMidStreamResets cuts the reporter's connection
// repeatedly while it streams, and requires the collector to end up
// with every event exactly once: the resume handshake prunes what was
// acked, the suffix is retransmitted, and the server absorbs the
// overlap as stale no-ops.
func TestReporterSurvivesMidStreamResets(t *testing.T) {
	c, srv, p := startFaultServer(t)
	rep := fastReporter(t, p)

	const total = 2000
	for i := 1; i <= total; i++ {
		if err := rep.Report(RawEvent{Trace: "p0", Seq: i, Kind: event.KindInternal, Type: "x"}); err != nil {
			t.Fatalf("report %d: %v", i, err)
		}
		if i%400 == 0 {
			p.CutAll()
		}
	}
	if err := rep.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	waitFor(t, func() bool { return c.Delivered() == total })

	// Exactly once: the collector delivered each seq precisely one time
	// (a double delivery would push Delivered past total or error the
	// report path; a loss would stall it below).
	if got := c.Delivered(); got != total {
		t.Fatalf("delivered %d events, want exactly %d", got, total)
	}
	st := rep.Stats()
	if st.Reconnects == 0 {
		t.Fatalf("stats = %+v: the cuts never forced a reconnect (test proved nothing)", st)
	}
	if st.Acked != total {
		t.Fatalf("acked %d of %d reported events", st.Acked, total)
	}
	t.Logf("reporter: %+v, server: %+v, proxy: %+v", st, srv.WireStats(), p.Stats())
}

// TestMonitorResumesGapAndDuplicateFree cuts the monitor's connection
// while it drains a long replay and requires the resumed stream to be
// the exact continuation: indices 1..N in order, nothing skipped,
// nothing repeated.
func TestMonitorResumesGapAndDuplicateFree(t *testing.T) {
	c, _, p := startFaultServer(t)

	const total = 5000
	for i := 1; i <= total; i++ {
		if err := c.Report(RawEvent{Trace: "p0", Seq: i, Kind: event.KindInternal, Type: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return c.Delivered() == total })

	// Throttle the proxy so the replay is still in flight when the cuts
	// land; an unthrottled loopback would buffer the whole stream before
	// the first cut, and the test would prove nothing.
	p.SetChunk(256, 200*time.Microsecond)
	mon, err := DialMonitor(p.Addr(),
		WithMonitorReconnect(10*time.Second),
		WithMonitorBackoff(2*time.Millisecond, 50*time.Millisecond),
		WithMonitorLog(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	for i := 1; i <= total; i++ {
		e, err := mon.Next()
		if err != nil {
			t.Fatalf("next %d: %v", i, err)
		}
		if e.ID.Index != i {
			t.Fatalf("event %d has index %d: stream gap or duplicate across resume", i, e.ID.Index)
		}
		// Sever mid-replay a few times; the client must resume at its
		// exact offset.
		if i == 1000 || i == 2500 || i == 4000 {
			p.CutAll()
		}
	}
	if st := mon.Stats(); st.Reconnects == 0 {
		t.Fatalf("stats = %+v: the cuts never forced a resume (test proved nothing)", st)
	}
}

// TestWireSurvivesPartialWrites forces every gob frame to cross the
// proxy in 3-byte fragments — each message split over dozens of TCP
// writes — in both directions, and requires full fidelity end to end.
func TestWireSurvivesPartialWrites(t *testing.T) {
	c, _, p := startFaultServer(t)
	p.SetChunk(3, 50*time.Microsecond)

	rep := fastReporter(t, p)
	mon, err := DialMonitor(p.Addr(), WithMonitorReconnect(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	const total = 100
	for i := 1; i <= total; i++ {
		if err := rep.Report(RawEvent{Trace: "p0", Seq: i, Kind: event.KindSend, Type: "send", Text: "payload-payload-payload", MsgID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rep.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return c.Delivered() == total })
	for i := 1; i <= total; i++ {
		e, err := mon.Next()
		if err != nil {
			t.Fatalf("next %d: %v", i, err)
		}
		if e.ID.Index != i || e.Type != "send" || e.Text != "payload-payload-payload" {
			t.Fatalf("event %d corrupted: %+v", i, e)
		}
	}
}

// TestReporterResetDuringReplay cuts the connection again while the
// reporter is retransmitting after the first cut: resume must compose
// with resume.
func TestReporterResetDuringReplay(t *testing.T) {
	c, _, p := startFaultServer(t)
	rep := fastReporter(t, p)

	const total = 3000
	// A byte-budget kill on every future connection: each resume session
	// dies after 64 KiB, so replays themselves are interrupted until the
	// budget is lifted.
	for i := 1; i <= total; i++ {
		if err := rep.Report(RawEvent{Trace: "p0", Seq: i, Kind: event.KindInternal, Type: "x"}); err != nil {
			t.Fatal(err)
		}
		if i == total/2 {
			p.SetKillAfter(64 * 1024)
			p.CutAll()
		}
	}
	// Let a few byte-limited sessions die mid-replay, then heal the link.
	time.Sleep(150 * time.Millisecond)
	p.SetKillAfter(0)
	if err := rep.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	waitFor(t, func() bool { return c.Delivered() == total })
	if got := c.Delivered(); got != total {
		t.Fatalf("delivered %d events, want exactly %d", got, total)
	}
}

// TestHeartbeatsKeepIdleConnectionAlive: an idle but heartbeating
// reporter must survive a server peer timeout several times over.
func TestHeartbeatsKeepIdleConnectionAlive(t *testing.T) {
	c := NewCollector()
	s := NewServer(c, t.Logf)
	// Aggressive dead-peer detection: 120ms of silence kills a target.
	s.SetWireTiming(20*time.Millisecond, 20*time.Millisecond, 120*time.Millisecond)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })

	rep, err := DialReporter(addr, WithReporterHeartbeat(25*time.Millisecond), WithReporterLog(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if err := rep.Report(RawEvent{Trace: "p0", Seq: 1, Kind: event.KindInternal, Type: "x"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return c.Delivered() == 1 })

	// Idle for 4x the server's peer timeout; only heartbeats flow.
	time.Sleep(500 * time.Millisecond)
	if err := rep.Report(RawEvent{Trace: "p0", Seq: 2, Kind: event.KindInternal, Type: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := rep.Flush(); err != nil {
		t.Fatalf("flush after idle period: %v", err)
	}
	waitFor(t, func() bool { return c.Delivered() == 2 })
	if st := rep.Stats(); st.Reconnects != 0 {
		t.Fatalf("stats = %+v: the idle connection was severed despite heartbeats", st)
	}
}

// TestServerDetectsDeadTarget: a target that goes silent (no events, no
// heartbeats — a crashed process or blackholed link) is detected and
// its connection reclaimed within the peer timeout.
func TestServerDetectsDeadTarget(t *testing.T) {
	c := NewCollector()
	s := NewServer(c, t.Logf)
	s.SetWireTiming(20*time.Millisecond, 20*time.Millisecond, 100*time.Millisecond)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })

	// A raw connection that completes the handshake and then plays dead.
	conn, err := dialRaw(addr, hello{Magic: wireMagic, Role: roleTarget})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// The server must hang up on its own; consume until it does.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 4096)
	for {
		if _, err := conn.Read(buf); err != nil {
			if isTimeout(err) {
				t.Fatal("server never severed the silent target")
			}
			return // closed by the server: dead peer detected
		}
	}
}

// TestMonitorDetectsStalledServer: with reconnection disabled, a
// blackholed link (no events, no heartbeats arriving) must surface as
// ErrStreamInterrupted within the read timeout — not hang, and not
// masquerade as a clean end of stream.
func TestMonitorDetectsStalledServer(t *testing.T) {
	c, _, p := startFaultServer(t)
	if err := c.Report(RawEvent{Trace: "p0", Seq: 1, Kind: event.KindInternal, Type: "x"}); err != nil {
		t.Fatal(err)
	}
	mon, err := DialMonitor(p.Addr(),
		WithMonitorReconnect(0),
		WithMonitorReadTimeout(150*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	if _, err := mon.Next(); err != nil {
		t.Fatalf("next before blackhole: %v", err)
	}

	p.SetBlackhole(true)
	defer p.SetBlackhole(false)
	start := time.Now()
	_, err = mon.Next()
	if err == nil || err == io.EOF {
		t.Fatalf("Next under blackhole = %v, want ErrStreamInterrupted", err)
	}
	if !errors.Is(err, ErrStreamInterrupted) {
		t.Fatalf("Next under blackhole = %v, want ErrStreamInterrupted", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("dead-server detection took %v, want ~the 150ms read timeout", elapsed)
	}
}

// TestMonitorReconnectBudgetExhausted: when the server is gone for good,
// a reconnecting client gives up after its budget and reports the
// interruption with the budget in the error.
func TestMonitorReconnectBudgetExhausted(t *testing.T) {
	c, srv, p := startFaultServer(t)
	if err := c.Report(RawEvent{Trace: "p0", Seq: 1, Kind: event.KindInternal, Type: "x"}); err != nil {
		t.Fatal(err)
	}
	mon, err := DialMonitor(p.Addr(),
		WithMonitorReconnect(200*time.Millisecond),
		WithMonitorBackoff(10*time.Millisecond, 40*time.Millisecond),
		WithMonitorReadTimeout(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	if _, err := mon.Next(); err != nil {
		t.Fatal(err)
	}

	// Take the server away entirely; the proxy refuses new sessions too.
	_ = srv.Close()
	_ = p.Close()
	_, err = mon.Next()
	if err == nil || err == io.EOF {
		t.Fatalf("Next after permanent outage = %v, want budget-exhausted interruption", err)
	}
	if !errors.Is(err, ErrStreamInterrupted) || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("Next after permanent outage = %v, want ErrStreamInterrupted with exhausted budget", err)
	}
}

// TestReporterBufferBoundedUnderOutage: with a small unacked buffer and
// the server blackholed, Report must block (bounded memory) rather than
// grow without limit, and must come unstuck when the link heals.
func TestReporterBufferBoundedUnderOutage(t *testing.T) {
	c, _, p := startFaultServer(t)
	rep, err := DialReporter(p.Addr(),
		WithReporterBuffer(64),
		WithReporterBackoff(2*time.Millisecond, 20*time.Millisecond),
		WithReporterHeartbeat(20*time.Millisecond),
		WithReporterLog(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()

	p.SetBlackhole(true)
	blocked := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		// 200 events into a 64-slot buffer: Report must block partway.
		var err error
		for i := 1; i <= 200 && err == nil; i++ {
			if i == 100 {
				close(blocked)
			}
			err = rep.Report(RawEvent{Trace: "p0", Seq: i, Kind: event.KindInternal, Type: "x"})
		}
		done <- err
	}()
	select {
	case <-done:
		t.Fatal("200 reports completed against a blackholed 64-slot buffer")
	case <-time.After(300 * time.Millisecond):
	}
	p.SetBlackhole(false)
	// Healing the link may not be enough: the stalled session's deadline
	// has to expire first, then the reporter reconnects and drains.
	if err := <-done; err != nil {
		t.Fatalf("report after heal: %v", err)
	}
	if err := rep.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return c.Delivered() == 200 })
	_ = blocked
}

// TestWireFaultSoak is the long-running chaos test: tens of thousands
// of events streamed while the link is continuously cut, stalled,
// fragmented and byte-capped at random, then a final assertion of the
// exactly-once contract on both sides of the wire. Skipped under
// -short; CI runs it in the fault-injection job.
func TestWireFaultSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("fault soak skipped in -short mode")
	}
	c, srv, p := startFaultServer(t)
	rep := fastReporter(t, p)
	mon, err := DialMonitor(p.Addr(),
		WithMonitorReconnect(time.Minute),
		WithMonitorBackoff(2*time.Millisecond, 50*time.Millisecond),
		WithMonitorLog(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	const total = 20000
	rng := rand.New(rand.NewSource(1))

	stopChaos := make(chan struct{})
	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		for {
			select {
			case <-stopChaos:
				// Heal everything before the final drain.
				p.SetBlackhole(false)
				p.SetChunk(0, 0)
				p.SetKillAfter(0)
				p.SetLatency(0)
				return
			case <-time.After(time.Duration(10+rng.Intn(40)) * time.Millisecond):
			}
			switch rng.Intn(5) {
			case 0:
				p.CutAll()
			case 1:
				p.SetBlackhole(true)
				time.Sleep(time.Duration(20+rng.Intn(60)) * time.Millisecond)
				p.SetBlackhole(false)
			case 2:
				p.SetChunk(1+rng.Intn(32), 20*time.Microsecond)
			case 3:
				p.SetKillAfter(int64(4096 + rng.Intn(32*1024)))
				time.Sleep(50 * time.Millisecond)
				p.SetKillAfter(0)
			case 4:
				p.SetLatency(time.Duration(rng.Intn(3)) * time.Millisecond)
			}
		}
	}()

	// The consumer runs concurrently with the chaos, checking the stream
	// for gaps and duplicates as it goes.
	consumerDone := make(chan error, 1)
	go func() {
		for i := 1; i <= total; i++ {
			e, err := mon.Next()
			if err != nil {
				consumerDone <- fmt.Errorf("next %d: %w", i, err)
				return
			}
			if e.ID.Index != i {
				consumerDone <- fmt.Errorf("event %d has index %d: gap or duplicate", i, e.ID.Index)
				return
			}
		}
		consumerDone <- nil
	}()

	for i := 1; i <= total; i++ {
		if err := rep.Report(RawEvent{Trace: "p0", Seq: i, Kind: event.KindInternal, Type: "x"}); err != nil {
			t.Fatalf("report %d: %v", i, err)
		}
	}
	close(stopChaos)
	<-chaosDone
	if err := rep.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	waitFor(t, func() bool { return c.Delivered() == total })
	if got := c.Delivered(); got != total {
		t.Fatalf("delivered %d, want exactly %d", got, total)
	}
	select {
	case err := <-consumerDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("consumer did not finish draining the stream")
	}
	t.Logf("soak: reporter %+v, server %+v, proxy %+v", rep.Stats(), srv.WireStats(), p.Stats())
}
