package poet

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"

	"ocep/internal/event"
)

// This file implements the "future plugin" of the paper's Section VI: a
// query interface that lets a client retrieve the vector timestamp (and
// the rest) of any previously delivered event in constant time, plus the
// derived greatest-predecessor and least-successor queries. A monitor
// using it can bound its local event history and fall back to the
// collector for old events instead of retaining everything.

// Collector-side accessors (all lock-protected; safe alongside Report).

// GetEvent returns a delivered event by ID.
func (c *Collector) GetEvent(id event.ID) (*event.Event, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.store.Get(id)
	return e, e != nil
}

// QueryGP returns the greatest-predecessor index of the identified event
// on a trace (0 when none).
func (c *Collector) QueryGP(id event.ID, t event.TraceID) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.store.Get(id)
	if e == nil {
		return 0, fmt.Errorf("poet: query: unknown event %s", id)
	}
	return c.store.GP(e, t), nil
}

// QueryLS returns the least-successor index of the identified event on a
// trace (0 when none delivered yet).
func (c *Collector) QueryLS(id event.ID, t event.TraceID) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.store.Get(id)
	if e == nil {
		return 0, fmt.Errorf("poet: query: unknown event %s", id)
	}
	return c.store.LS(e, t), nil
}

// Wire protocol for the query role.

const roleQuery = "query"

// queryOp selects the query kind.
type queryOp int

const (
	opGet queryOp = iota + 1
	opGP
	opLS
)

type queryReq struct {
	Op           queryOp
	Trace, Index int
	// Arg is the second trace for GP/LS queries.
	Arg int
}

type queryResp struct {
	OK    bool
	Error string
	// Event is set for opGet.
	Event *wireEvent
	// Pos is set for opGP/opLS.
	Pos int
}

// handleQuery serves one query connection.
func (s *Server) handleQuery(conn net.Conn, dec *gob.Decoder) error {
	enc := gob.NewEncoder(conn)
	for {
		var req queryReq
		if err := dec.Decode(&req); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("decoding query: %w", err)
		}
		id := event.ID{Trace: event.TraceID(req.Trace), Index: req.Index}
		var resp queryResp
		switch req.Op {
		case opGet:
			if e, ok := s.collector.GetEvent(id); ok {
				resp = queryResp{OK: true, Event: toWire(e)}
			} else {
				resp = queryResp{Error: fmt.Sprintf("unknown event %s", id)}
			}
		case opGP:
			pos, err := s.collector.QueryGP(id, event.TraceID(req.Arg))
			if err != nil {
				resp = queryResp{Error: err.Error()}
			} else {
				resp = queryResp{OK: true, Pos: pos}
			}
		case opLS:
			pos, err := s.collector.QueryLS(id, event.TraceID(req.Arg))
			if err != nil {
				resp = queryResp{Error: err.Error()}
			} else {
				resp = queryResp{OK: true, Pos: pos}
			}
		default:
			resp = queryResp{Error: fmt.Sprintf("unknown query op %d", req.Op)}
		}
		if err := enc.Encode(&resp); err != nil {
			return fmt.Errorf("encoding query response: %w", err)
		}
	}
}

// QueryClient retrieves event timestamps and causality positions from a
// POET server. Not safe for concurrent use (requests are pipelined
// one at a time).
type QueryClient struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// DialQuery connects to a POET server as a query client.
func DialQuery(addr string) (*QueryClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("poet query: dial: %w", err)
	}
	enc := gob.NewEncoder(conn)
	if err := enc.Encode(hello{Magic: wireMagic, Role: roleQuery}); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("poet query: hello: %w", err)
	}
	return &QueryClient{conn: conn, enc: enc, dec: gob.NewDecoder(conn)}, nil
}

func (q *QueryClient) roundTrip(req queryReq) (queryResp, error) {
	if err := q.enc.Encode(&req); err != nil {
		return queryResp{}, fmt.Errorf("poet query: send: %w", err)
	}
	var resp queryResp
	if err := q.dec.Decode(&resp); err != nil {
		return queryResp{}, fmt.Errorf("poet query: receive: %w", err)
	}
	if !resp.OK {
		return resp, fmt.Errorf("poet query: %s", resp.Error)
	}
	return resp, nil
}

// Get retrieves a delivered event by ID.
func (q *QueryClient) Get(id event.ID) (*event.Event, error) {
	resp, err := q.roundTrip(queryReq{Op: opGet, Trace: int(id.Trace), Index: id.Index})
	if err != nil {
		return nil, err
	}
	return fromWire(resp.Event), nil
}

// GP returns the greatest-predecessor index of id on trace t.
func (q *QueryClient) GP(id event.ID, t event.TraceID) (int, error) {
	resp, err := q.roundTrip(queryReq{Op: opGP, Trace: int(id.Trace), Index: id.Index, Arg: int(t)})
	if err != nil {
		return 0, err
	}
	return resp.Pos, nil
}

// LS returns the least-successor index of id on trace t.
func (q *QueryClient) LS(id event.ID, t event.TraceID) (int, error) {
	resp, err := q.roundTrip(queryReq{Op: opLS, Trace: int(id.Trace), Index: id.Index, Arg: int(t)})
	if err != nil {
		return 0, err
	}
	return resp.Pos, nil
}

// Close closes the connection.
func (q *QueryClient) Close() error { return q.conn.Close() }
