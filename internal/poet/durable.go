// Durability subsystem: write-ahead logging and snapshots for the
// collector, so a crash-killed poetd restarted against the same data
// directory recovers to exactly the state its peers expect.
//
// Layout of a data directory:
//
//	<dir>/snapshot.poet   last complete snapshot (dump format, see dump.go)
//	<dir>/NNNNNNNN.wal    write-ahead log segments (see internal/wal)
//
// Every ingested RawEvent — delivered or still buffered awaiting causal
// partners — is appended to the WAL under the collector lock, so WAL
// order equals ingestion order and recovery rebuilds the identical
// linearization (the same delivery order, vector clocks, ack
// watermarks, and monitor stream offsets). Explicitly registered trace
// names are logged too, preserving trace numbering.
//
// Snapshots bound recovery time: every SnapshotEvery ingested events the
// collector's state is written to snapshot.poet (temp file + fsync +
// rename) and the WAL segments older than the rotation cut are removed.
// A crash anywhere in that protocol is safe: a stale snapshot plus a
// longer WAL replays extra records that land as idempotent stale no-ops.
package poet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"ocep/internal/event"
	"ocep/internal/telemetry"
	"ocep/internal/wal"
)

// SnapshotFile is the name of the snapshot inside a data directory.
const SnapshotFile = "snapshot.poet"

// Sync policies, re-exported so callers do not import internal/wal.
type SyncPolicy = wal.SyncPolicy

const (
	SyncAlways   = wal.SyncAlways
	SyncInterval = wal.SyncInterval
	SyncNone     = wal.SyncNone
)

// ParseSyncPolicy parses "always", "interval", or "none".
func ParseSyncPolicy(s string) (SyncPolicy, error) { return wal.ParseSyncPolicy(s) }

// DurableOptions configures OpenDurable.
type DurableOptions struct {
	// Dir is the data directory, created if missing.
	Dir string
	// Fsync is the WAL fsync policy (default SyncAlways).
	Fsync SyncPolicy
	// FsyncInterval is the flush cadence for SyncInterval/SyncNone.
	FsyncInterval time.Duration
	// SnapshotEvery triggers a snapshot each time this many events have
	// been appended since the last one. 0 means the default (8192);
	// negative disables periodic snapshots (Close still writes one).
	SnapshotEvery int
	// Logf, when non-nil, receives recovery and snapshot progress lines.
	Logf func(format string, args ...any)
}

const defaultSnapshotEvery = 8192

// RecoveryStats describes what startup recovery found and rebuilt.
type RecoveryStats struct {
	// SnapshotEvents and SnapshotPending count events restored from the
	// snapshot's delivered and pending sections.
	SnapshotEvents, SnapshotPending int
	// SnapshotTruncated reports a snapshot cut short by a crash
	// mid-write; the valid prefix was kept and the WAL filled the rest.
	SnapshotTruncated bool
	// WALRecords counts WAL records replayed into the collector.
	WALRecords int
	// StaleRecords counts WAL records that were already covered by the
	// snapshot (a crash between snapshot and truncation leaves them
	// behind; they replay as idempotent no-ops).
	StaleRecords int
	// RejectedRecords counts well-formed WAL records the collector
	// refused for reasons other than staleness (e.g. a duplicate message
	// id). Nonzero values indicate a corrupt-but-CRC-valid log.
	RejectedRecords int
	// DiscardedRecords and DiscardedBytes count the torn/corrupt WAL
	// suffix dropped by crash recovery (see wal.ReplayStats).
	DiscardedRecords, DiscardedBytes int64
	// Delivered and Pending are the collector's state after recovery.
	Delivered, Pending int
	// Elapsed is the wall time recovery took.
	Elapsed time.Duration
}

// Durability write-ahead-logs a collector's ingestion and manages its
// snapshots. Create one with OpenDurable; the zero value is not usable.
type Durability struct {
	c   *Collector
	log *wal.Log
	dir string

	policy        SyncPolicy
	snapshotEvery int
	logf          func(format string, args ...any)
	recovery      RecoveryStats

	// snapMu serializes snapshot writes (periodic vs Close).
	snapMu sync.Mutex
	// snapping guards against overlapping background snapshot triggers.
	snapping  atomic.Bool
	sinceSnap atomic.Int64
	snapshots atomic.Int64
	closed    atomic.Bool
}

// OpenDurable opens (or creates) a data directory, recovers its
// snapshot and write-ahead log into c, and attaches write-ahead logging
// to c's ingestion path. The collector must be fresh: recovery rebuilds
// its entire state. Retention is enabled implicitly (snapshots need the
// delivered log).
func OpenDurable(c *Collector, opts DurableOptions) (*Durability, error) {
	if c.Delivered() > 0 || c.Pending() > 0 {
		return nil, fmt.Errorf("poet: OpenDurable requires a fresh collector")
	}
	if c.RetentionStats().KeepEvents > 0 {
		return nil, fmt.Errorf("poet: OpenDurable requires a collector without retention (snapshots need the full delivered log)")
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("poet: OpenDurable requires a data directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("poet: creating data directory: %w", err)
	}
	d := &Durability{
		c:             c,
		dir:           opts.Dir,
		policy:        opts.Fsync,
		snapshotEvery: opts.SnapshotEvery,
		logf:          opts.Logf,
	}
	if d.snapshotEvery == 0 {
		d.snapshotEvery = defaultSnapshotEvery
	}
	if d.logf == nil {
		d.logf = func(string, ...any) {}
	}
	c.RetainLog()

	start := time.Now()
	n, truncated, err := c.reloadSnapshotFile(filepath.Join(opts.Dir, SnapshotFile))
	switch {
	case err == errNoSnapshot:
	case err != nil:
		return nil, err
	default:
		d.recovery.SnapshotTruncated = truncated
		d.recovery.SnapshotEvents = c.Delivered()
		d.recovery.SnapshotPending = n - d.recovery.SnapshotEvents
		if truncated {
			d.logf("poet: snapshot torn mid-write; recovered %d-event prefix", n)
		}
	}

	// Replay the WAL through the normal ingestion path. d is not yet
	// attached to c, so replay does not re-log.
	log, walStats, err := wal.Open(opts.Dir, wal.Options{Policy: opts.Fsync, Interval: opts.FsyncInterval}, func(p []byte) error {
		d.recovery.WALRecords++
		if err := d.replayRecord(p); err != nil {
			// A record the collector refuses is a recovery observation,
			// not a reason to refuse to start: staleness is the expected
			// snapshot/WAL overlap, anything else is counted loudly.
			if errors.Is(err, ErrStaleEvent) {
				d.recovery.StaleRecords++
			} else {
				d.recovery.RejectedRecords++
				d.logf("poet: recovery rejected WAL record %d: %v", d.recovery.WALRecords, err)
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("poet: opening write-ahead log: %w", err)
	}
	d.log = log
	d.recovery.DiscardedRecords = int64(walStats.DiscardedRecords)
	d.recovery.DiscardedBytes = walStats.DiscardedBytes
	d.recovery.Delivered = c.Delivered()
	d.recovery.Pending = c.Pending()
	d.recovery.Elapsed = time.Since(start)
	// The replayed backlog counts toward the next snapshot trigger, so a
	// crash loop cannot grow the WAL without bound.
	d.sinceSnap.Store(int64(d.recovery.WALRecords))

	c.mu.Lock()
	c.durable = d
	c.mu.Unlock()
	if d.recovery.SnapshotEvents+d.recovery.SnapshotPending+d.recovery.WALRecords > 0 {
		d.logf("poet: recovered %d delivered + %d pending events (snapshot %d+%d, wal %d, stale %d, discarded %d) in %v",
			d.recovery.Delivered, d.recovery.Pending,
			d.recovery.SnapshotEvents, d.recovery.SnapshotPending,
			d.recovery.WALRecords, d.recovery.StaleRecords,
			d.recovery.DiscardedRecords, d.recovery.Elapsed.Round(time.Millisecond))
	}
	return d, nil
}

// Recovery returns what startup recovery found.
func (d *Durability) Recovery() RecoveryStats { return d.recovery }

// InstrumentMetrics registers the durability subsystem's metrics with
// reg: snapshot and recovery counters here, plus the underlying WAL's
// append/fsync counters and latency histograms. Call it at wiring
// time — after OpenDurable (recovery itself is not metered) and before
// reporting begins. A nil registry is a no-op. Collector
// InstrumentMetrics calls this automatically for an attached
// durability, so poetd only instruments the collector.
func (d *Durability) InstrumentMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	d.log.SetMetrics(wal.NewMetrics(reg))
	reg.CounterFunc("poet_snapshots_total", "Snapshots written (including the final one on Close).", d.Snapshots)
	reg.GaugeFunc("poet_recovery_wal_records", "WAL records replayed by the last startup recovery.", func() int64 {
		return int64(d.recovery.WALRecords)
	})
	reg.GaugeFunc("poet_recovery_stale_records", "Replayed WAL records already covered by the snapshot (idempotent no-ops).", func() int64 {
		return int64(d.recovery.StaleRecords)
	})
	reg.GaugeFunc("poet_recovery_discarded_records", "Torn or corrupt WAL records discarded by the last startup recovery.", func() int64 {
		return d.recovery.DiscardedRecords
	})
	reg.GaugeFunc("poet_recovery_delivered_events", "Delivered events rebuilt by the last startup recovery.", func() int64 {
		return int64(d.recovery.Delivered)
	})
}

// Snapshots returns how many snapshots have been written (including the
// final one on Close).
func (d *Durability) Snapshots() int64 { return d.snapshots.Load() }

// Sync flushes and fsyncs the write-ahead log regardless of the
// configured policy — an explicit durability barrier for callers on the
// weaker policies.
func (d *Durability) Sync() error { return d.log.Sync() }

// appendEventLocked logs one ingested event. Caller holds c.mu.
func (d *Durability) appendEventLocked(raw RawEvent) (int64, error) {
	seq, err := d.log.Append(encodeEventRecord(raw))
	if err != nil {
		return -1, err
	}
	d.sinceSnap.Add(1)
	return seq, nil
}

// appendTraceLocked logs one explicit trace registration. Caller holds
// c.mu. WAL failure here is deferred to the next commit (the sticky
// error resurfaces); returns -1 so the caller skips the commit.
func (d *Durability) appendTraceLocked(name string) int64 {
	seq, err := d.log.Append(encodeTraceRecord(name))
	if err != nil {
		return -1
	}
	return seq
}

// appendedLocked returns the WAL append position. Caller holds c.mu.
func (d *Durability) appendedLocked() int64 { return d.log.Appended() }

// waitDurable blocks until the given WAL position is durable under the
// configured policy. Under SyncAlways that means fsynced; the weaker
// policies explicitly trade this barrier away, so it is a no-op.
func (d *Durability) waitDurable(seq int64) error {
	if d.policy != SyncAlways || seq == 0 {
		return nil
	}
	return d.log.Commit(seq)
}

// barrier blocks until every append so far is durable under SyncAlways
// (a no-op on the weaker policies, which trade this guarantee away).
// The monitor send path uses it so an event is never on the wire to a
// monitor before it is on disk — otherwise a crash could leave a
// resuming monitor ahead of the recovered stream.
func (d *Durability) barrier() error {
	if d.policy != SyncAlways {
		return nil
	}
	return d.log.Commit(d.log.Appended())
}

// commit makes the given append durable per policy and triggers a
// background snapshot when the interval has elapsed.
func (d *Durability) commit(seq int64) error {
	err := d.log.Commit(seq)
	if err == nil && d.snapshotEvery > 0 &&
		d.sinceSnap.Load() >= int64(d.snapshotEvery) &&
		!d.closed.Load() && d.snapping.CompareAndSwap(false, true) {
		go func() {
			defer d.snapping.Store(false)
			if d.closed.Load() { // Close snapshots on its own
				return
			}
			if serr := d.Snapshot(); serr != nil {
				d.logf("poet: background snapshot failed: %v", serr)
			}
		}()
	}
	return err
}

// Snapshot writes the collector's current state to the data directory
// and truncates the WAL segments the snapshot makes redundant. Safe to
// call concurrently with ingestion: the state cut and the WAL rotation
// happen atomically under the collector lock, so every event is in
// exactly one of {snapshot, post-cut WAL}.
func (d *Durability) Snapshot() error {
	d.snapMu.Lock()
	defer d.snapMu.Unlock()

	c := d.c
	c.mu.Lock()
	cut, err := d.log.Rotate()
	if err != nil {
		c.mu.Unlock()
		return fmt.Errorf("poet: rotating WAL for snapshot: %w", err)
	}
	st, err := c.snapshotStateLocked()
	d.sinceSnap.Store(0)
	c.mu.Unlock()
	if err != nil {
		return err
	}

	path := filepath.Join(d.dir, SnapshotFile)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("poet: creating snapshot: %w", err)
	}
	if err := encodeSnapshot(f, st); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("poet: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("poet: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("poet: publishing snapshot: %w", err)
	}
	if dirf, err := os.Open(d.dir); err == nil {
		_ = dirf.Sync()
		dirf.Close()
	}
	// Only now is the pre-cut WAL redundant. A crash before this line
	// replays those segments as stale no-ops against the new snapshot.
	if err := d.log.RemoveSegmentsBefore(cut); err != nil {
		return fmt.Errorf("poet: truncating WAL after snapshot: %w", err)
	}
	d.snapshots.Add(1)
	d.logf("poet: snapshot: %d delivered + %d pending events, WAL truncated below segment %d", len(st.events), len(st.pending), cut)
	return nil
}

// Close writes a final snapshot (so restart recovery is a pure snapshot
// load), truncates the WAL, detaches from the collector, and closes the
// log. Safe to call once; the collector remains usable in memory-only
// mode afterwards.
func (d *Durability) Close() error {
	if d.closed.Swap(true) {
		return nil
	}
	snapErr := d.Snapshot()
	c := d.c
	c.mu.Lock()
	if c.durable == d {
		c.durable = nil
	}
	c.mu.Unlock()
	closeErr := d.log.Close()
	if snapErr != nil {
		return snapErr
	}
	return closeErr
}

// ReloadDir replays a durability data directory — snapshot plus WAL —
// into a collector without attaching durability, for offline inspection
// of a recovered state (`poetd -reload <datadir>`).
func ReloadDir(c *Collector, dir string) (RecoveryStats, error) {
	var stats RecoveryStats
	start := time.Now()
	n, truncated, err := c.reloadSnapshotFile(filepath.Join(dir, SnapshotFile))
	switch {
	case err == errNoSnapshot:
	case err != nil:
		return stats, err
	default:
		stats.SnapshotTruncated = truncated
		stats.SnapshotEvents = c.Delivered()
		stats.SnapshotPending = n - stats.SnapshotEvents
	}
	d := &Durability{c: c} // decode context only; no log attached
	walStats, err := wal.Replay(dir, func(p []byte) error {
		stats.WALRecords++
		if err := d.replayRecord(p); err != nil {
			if errors.Is(err, ErrStaleEvent) {
				stats.StaleRecords++
			} else {
				stats.RejectedRecords++
			}
		}
		return nil
	})
	if err != nil {
		return stats, fmt.Errorf("poet: replaying write-ahead log: %w", err)
	}
	stats.DiscardedRecords = int64(walStats.DiscardedRecords)
	stats.DiscardedBytes = walStats.DiscardedBytes
	stats.Delivered = c.Delivered()
	stats.Pending = c.Pending()
	stats.Elapsed = time.Since(start)
	return stats, nil
}

// WAL record encoding: one leading kind byte, then varint-framed fields.
// Manual encoding instead of gob: records are written on the ingestion
// hot path, and gob's per-encoder type preamble would bloat every
// record.
const (
	recEvent = 1 // trace, seq, kind, msgid, type, text
	recTrace = 2 // name
)

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func encodeEventRecord(raw RawEvent) []byte {
	b := make([]byte, 0, 16+len(raw.Trace)+len(raw.Type)+len(raw.Text))
	b = append(b, recEvent)
	b = appendString(b, raw.Trace)
	b = binary.AppendUvarint(b, uint64(raw.Seq))
	b = binary.AppendUvarint(b, uint64(raw.Kind))
	b = binary.AppendUvarint(b, raw.MsgID)
	b = appendString(b, raw.Type)
	b = appendString(b, raw.Text)
	return b
}

func encodeTraceRecord(name string) []byte {
	b := make([]byte, 0, 2+len(name))
	b = append(b, recTrace)
	return appendString(b, name)
}

// recordReader cursors over one WAL record payload.
type recordReader struct {
	p   []byte
	bad bool
}

func (r *recordReader) uvarint() uint64 {
	v, n := binary.Uvarint(r.p)
	if n <= 0 {
		r.bad = true
		return 0
	}
	r.p = r.p[n:]
	return v
}

func (r *recordReader) string() string {
	n := r.uvarint()
	if r.bad || n > uint64(len(r.p)) {
		r.bad = true
		return ""
	}
	s := string(r.p[:n])
	r.p = r.p[n:]
	return s
}

// replayRecord decodes one WAL record and applies it to the collector.
func (d *Durability) replayRecord(p []byte) error {
	if len(p) == 0 {
		return fmt.Errorf("poet: empty WAL record")
	}
	r := &recordReader{p: p[1:]}
	switch p[0] {
	case recEvent:
		raw := RawEvent{Trace: r.string()}
		raw.Seq = int(r.uvarint())
		raw.Kind = event.Kind(r.uvarint())
		raw.MsgID = r.uvarint()
		raw.Type = r.string()
		raw.Text = r.string()
		if r.bad {
			return fmt.Errorf("poet: malformed WAL event record")
		}
		return d.c.Report(raw)
	case recTrace:
		name := r.string()
		if r.bad || name == "" {
			return fmt.Errorf("poet: malformed WAL trace record")
		}
		d.c.RegisterTrace(name)
		return nil
	default:
		return fmt.Errorf("poet: unknown WAL record kind %d", p[0])
	}
}
