package poet

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"ocep/internal/backoff"
	"ocep/internal/event"
)

// Warm-standby replication. A primary collector with the replication
// log enabled captures its ingestion-ordered record stream — every
// successfully ingested raw event plus every explicit trace
// registration, in exactly the order the WAL would log them — and
// serves it to replica sessions (hello role "replica") over the normal
// OCEP-POET-2 port. A standby runs a Replicator that applies the stream
// to its own collector through the public Report/RegisterTrace path, so
// the standby's delivery, ack watermarks, and monitor offsets are the
// deterministic product of the same record order the primary ingested:
// after a failover, a monitor's ResumeFrom and a reporter's pruned
// prefix mean the same thing on the standby that they meant on the
// primary.
//
// Two barriers make the failover exact while a replica is attached:
//
//   - reporter acks are released only once the replica has confirmed
//     the ingest position the ack snapshot was taken at (acksFor), so a
//     reporter never prunes an event the promoted standby might lack;
//   - monitor sends wait for the same confirmation (replBarrier), so a
//     monitor's resume offset never runs ahead of what the standby can
//     replay.
//
// Both barriers lift the moment no replica session is attached — a dead
// or detached standby must not take the primary's availability with it.
// The window this opens (events acked while no replica was attached are
// lost if the primary then dies before the replica catches up) is the
// standard warm-standby trade; the replication lag gauge and the
// standby's /readyz check are there to keep it observable.

// defaultReplAckWait bounds how long an ack release waits for a lagging
// replica before the ack is withheld for one interval; poetd lowers it
// to half the heartbeat so withheld acks still leave room for the empty
// frame to heartbeat the reporter.
const defaultReplAckWait = 500 * time.Millisecond

// ErrPrimaryDrained reports that the primary ended the replication
// session with an orderly drain (clean shutdown after full
// replication): the standby should promote.
var ErrPrimaryDrained = errors.New("poet: primary drained")

// repRecord is one entry of the replication log: an explicit trace
// registration (Trace non-empty), a peer-shard send record applied by
// SupplyRemoteSend (Remote non-nil), or an ingested event. Remote
// records matter on a sharded primary: delivery order depends on when
// remote sends became available, so the standby must apply them at the
// same position of the record stream to rebuild the identical
// linearization.
type repRecord struct {
	Trace  string
	Event  RawEvent
	Remote *shardExport
}

// isEvent reports whether the record is an ingested event — the only
// record kind replication offsets count.
func (r repRecord) isEvent() bool { return r.Trace == "" && r.Remote == nil }

// replState is the collector's replication bookkeeping, guarded by the
// collector's mu.
type replState struct {
	// log is the append-only ingestion-ordered record stream.
	log []repRecord
	// events counts the event records in log (the offset currency).
	events int
	// confirmed maps attached replica session ids to the event-record
	// count each has acknowledged applying.
	confirmed map[int]int
	nextSess  int
	// ch is closed and replaced whenever the log grows or a
	// confirmation/attachment changes, waking record senders and
	// barrier waiters (the channel-swap notification pattern).
	ch chan struct{}
}

func (r *replState) appendLocked(rec repRecord) {
	r.log = append(r.log, rec)
	if rec.isEvent() {
		r.events++
	}
	r.notifyLocked()
}

func (r *replState) notifyLocked() {
	close(r.ch)
	r.ch = make(chan struct{})
}

func (r *replState) minConfirmed() int {
	min := -1
	for _, n := range r.confirmed {
		if min < 0 || n < min {
			min = n
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// EnableReplicationLog makes the collector capture its ingestion-ordered
// record stream so replica sessions can tail it. Must be called before
// any event is ingested (a replica resuming from zero needs the stream
// complete from the start — enable it before OpenDurable so the
// recovered prefix is captured too), and is incompatible with
// SetRetention. Idempotent.
func (c *Collector) EnableReplicationLog() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.repl != nil {
		return nil
	}
	if c.retain > 0 {
		return errors.New("poet: replication log is incompatible with SetRetention (a replica resume needs the full record stream)")
	}
	if c.ingests > 0 {
		return errors.New("poet: EnableReplicationLog must be called before any event is ingested")
	}
	c.repl = &replState{confirmed: make(map[int]int), ch: make(chan struct{})}
	return nil
}

// SetReplicationAckWait bounds how long reporter-ack release waits for
// an attached replica's confirmation before withholding the ack for one
// interval. Zero restores the default.
func (c *Collector) SetReplicationAckWait(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.replAckWait = d
}

// ReplicationStats summarizes the primary side of replication.
type ReplicationStats struct {
	// Enabled reports whether the record stream is being captured.
	Enabled bool
	// Sessions is the number of currently attached replica sessions.
	Sessions int
	// Confirmed is the lowest event-record count an attached session
	// has confirmed (0 with no sessions).
	Confirmed int
	// Lag is the number of ingested events not yet confirmed by every
	// attached session (0 with no sessions: there is no one to lag).
	Lag int
	// Records is the length of the captured record stream (events plus
	// trace registrations).
	Records int
}

// ReplicationStats returns the primary-side replication counters.
func (c *Collector) ReplicationStats() ReplicationStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := ReplicationStats{Enabled: c.repl != nil}
	if c.repl == nil {
		return st
	}
	st.Sessions = len(c.repl.confirmed)
	st.Records = len(c.repl.log)
	if st.Sessions > 0 {
		st.Confirmed = c.repl.minConfirmed()
		st.Lag = c.ingests - st.Confirmed
	}
	return st
}

// replAttach registers a replica session whose hello confirmed applying
// the first `applied` event records, returning its session id.
func (c *Collector) replAttach(applied int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.repl.nextSess
	c.repl.nextSess++
	c.repl.confirmed[id] = applied
	c.repl.notifyLocked()
	return id
}

// replDetach removes a replica session; barriers that were waiting on
// it lift (the availability-over-durability choice documented above).
func (c *Collector) replDetach(id int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.repl.confirmed, id)
	c.repl.notifyLocked()
}

// replConfirm records a replica's confirmation of the first `applied`
// event records.
func (c *Collector) replConfirm(id, applied int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.repl.confirmed[id]; ok && applied > cur {
		c.repl.confirmed[id] = applied
		c.repl.notifyLocked()
	}
}

// replWait blocks until every attached replica session has confirmed
// pos event records, no session remains attached, or the timeout
// expires; it reports whether the confirmation condition held.
func (c *Collector) replWait(pos int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		r := c.repl
		if r == nil || len(r.confirmed) == 0 || r.minConfirmed() >= pos {
			c.mu.Unlock()
			return true
		}
		ch := r.ch
		c.mu.Unlock()
		d := time.Until(deadline)
		if d <= 0 {
			return false
		}
		t := time.NewTimer(d)
		select {
		case <-ch:
			t.Stop()
		case <-t.C:
			return false
		}
	}
}

// replBarrier blocks until every attached replica session has confirmed
// the current ingest position, or no session remains attached. The
// monitor send path runs behind it: an event is never on a monitor wire
// before the standby that would serve the monitor's resume has it. The
// wait is unbounded on purpose — a hung replica is evicted by the
// server's peer timeout, which detaches the session and lifts the
// barrier.
func (c *Collector) replBarrier() {
	c.mu.Lock()
	if c.repl == nil || len(c.repl.confirmed) == 0 {
		c.mu.Unlock()
		return
	}
	pos := c.ingests
	c.mu.Unlock()
	for {
		c.mu.Lock()
		r := c.repl
		if r == nil || len(r.confirmed) == 0 || r.minConfirmed() >= pos {
			c.mu.Unlock()
			return
		}
		ch := r.ch
		c.mu.Unlock()
		<-ch
	}
}

// replResumeIndex translates a replica's event-record offset into an
// index of the record log: the position just past the offset-th event
// record. Trace records inside the skipped prefix were applied by the
// replica strictly in order (it could not have applied the offset-th
// event otherwise), so nothing before the index needs replay.
func (c *Collector) replResumeIndex(events int) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if events < 0 || events > c.repl.events {
		return 0, fmt.Errorf("replica claims %d applied events, this collector ingested %d: it did not produce that stream", events, c.repl.events)
	}
	if events == 0 {
		return 0, nil
	}
	seen := 0
	for i, rec := range c.repl.log {
		if rec.isEvent() {
			seen++
			if seen == events {
				return i + 1, nil
			}
		}
	}
	// Unreachable: events <= c.repl.events was checked above.
	return len(c.repl.log), nil
}

// replRecordsFrom returns the record suffix starting at log index idx,
// the index just past it, the current ingest head, and the channel that
// signals growth (for an empty suffix). Records are immutable once
// appended, so the returned slice is safe to read without copying.
func (c *Collector) replRecordsFrom(idx int) (recs []repRecord, next, head int, ch <-chan struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.repl
	if idx < len(r.log) {
		recs = r.log[idx:len(r.log):len(r.log)]
	}
	return recs, len(r.log), c.ingests, r.ch
}

// ---------------------------------------------------------------------
// Server side: replica sessions, standby gating, drain.

// handleReplica streams the collector's record log to one warm standby:
// the suffix past the replica's confirmed offset first, then live
// records as they are ingested, with idle heartbeats carrying the
// ingest head so the replica can compute its lag on a quiet stream. A
// background reader consumes replicaAck frames and feeds the
// confirmations that release the primary's ack and monitor-send
// barriers.
func (s *Server) handleReplica(conn net.Conn, dec *gob.Decoder, h hello) error {
	c := s.collector
	enc := gob.NewEncoder(conn)
	sendHello := func(ack helloAck) error {
		_ = conn.SetWriteDeadline(time.Now().Add(s.writeTimeout))
		return enc.Encode(&ack)
	}
	if !c.ReplicationStats().Enabled {
		msg := "replication log not enabled on this collector"
		_ = sendHello(helloAck{Error: msg})
		return fmt.Errorf("replica %s: %s", conn.RemoteAddr(), msg)
	}
	idx, err := c.replResumeIndex(h.ReplicaFrom)
	if err != nil {
		_ = sendHello(helloAck{Error: err.Error()})
		return fmt.Errorf("replica %s: %v", conn.RemoteAddr(), err)
	}
	if err := sendHello(helloAck{OK: true}); err != nil {
		return fmt.Errorf("replica hello ack: %w", err)
	}
	s.replicaSessions.Add(1)
	s.tel.replicaConns.Inc()
	if h.ReplicaFrom > 0 {
		s.targetResumes.Add(1)
	}
	sess := c.replAttach(h.ReplicaFrom)
	defer c.replDetach(sess)
	s.logf("poet server: replica %s attached at offset %d", conn.RemoteAddr(), h.ReplicaFrom)

	// Confirmation reader. The peer timeout applies: a replica that
	// stops acking (hung, partitioned) is declared dead, detaching the
	// session so the barriers lift instead of stalling the primary.
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			_ = conn.SetReadDeadline(time.Now().Add(s.peerTimeout))
			var ack replicaAck
			if err := dec.Decode(&ack); err != nil {
				if isTimeout(err) {
					s.tel.peerTimeouts.Inc()
					s.logf("poet server: replica %s silent for %v; presumed dead", conn.RemoteAddr(), s.peerTimeout)
				}
				_ = conn.Close()
				return
			}
			if !ack.Heartbeat || ack.Applied > 0 {
				c.replConfirm(sess, ack.Applied)
			}
		}
	}()

	writeMsg := func(msg *wireMsg) error {
		_ = conn.SetWriteDeadline(time.Now().Add(s.writeTimeout))
		return enc.Encode(msg)
	}
	goodbye := func() error {
		// Drain precedes End: the replica takes it as the primary's
		// clean handoff and promotes.
		if err := writeMsg(&wireMsg{Drain: true}); err != nil {
			return err
		}
		return writeMsg(&wireMsg{End: true})
	}
	hb := time.NewTimer(s.hbInterval)
	defer hb.Stop()
	for {
		recs, next, head, ch := c.replRecordsFrom(idx)
		for i := range recs {
			msg := wireMsg{Head: head}
			switch {
			case recs[i].Trace != "":
				msg.Trace = &wireTrace{Name: recs[i].Trace}
			case recs[i].Remote != nil:
				rs := recs[i].Remote
				w := toWire(&event.Event{ID: rs.ID, VC: rs.VC})
				w.MsgID = rs.MsgID
				msg.Shard = w
			default:
				msg.Raw = &recs[i].Event
				s.replicaEvents.Add(1)
				s.tel.replicaEvents.Inc()
			}
			if err := writeMsg(&msg); err != nil {
				<-readerDone
				return fmt.Errorf("encoding to replica: %w", err)
			}
		}
		idx = next
		if len(recs) > 0 {
			// Re-check for records appended while this batch encoded
			// before parking.
			backoff.ResetTimer(hb, s.hbInterval)
			continue
		}
		select {
		case <-ch:
		case <-hb.C:
			hb.Reset(s.hbInterval)
			if err := writeMsg(&wireMsg{Heartbeat: true, Head: head}); err != nil {
				<-readerDone
				return fmt.Errorf("heartbeat to replica: %w", err)
			}
			s.heartbeats.Add(1)
		case <-readerDone:
			return nil
		case <-s.closing:
			err := goodbye()
			_ = conn.Close()
			<-readerDone
			return err
		}
	}
}

// SetStandby marks the server as an unpromoted warm standby: target,
// monitor, and replica hellos are rejected with a retriable ack
// (pools keep probing and fail over elsewhere) until Promote. Query
// sessions pass through — the standby's recovered state is readable.
func (s *Server) SetStandby(on bool) { s.standby.Store(on) }

// Standby reports whether the server is an unpromoted standby.
func (s *Server) Standby() bool { return s.standby.Load() }

// Promote clears the standby gate: the server starts accepting
// reporter, monitor, and replica sessions, serving them from the state
// the replication stream built.
func (s *Server) Promote() {
	if s.standby.CompareAndSwap(true, false) {
		s.logf("poet server: promoted; accepting sessions")
	}
}

// Draining reports whether Drain has begun. Readiness probes consult it
// so a draining collector advertises not-ready.
func (s *Server) Draining() bool { return s.drainFlag.Load() }

// Drain performs an orderly shutdown: new sessions are rejected with a
// retriable ack, every connected peer is sent a drain notice (pooled
// clients fail over immediately instead of waiting for dead-peer
// timeouts; single-endpoint peers just keep their session until the End
// frame), reporter acks keep flowing while connected targets flush,
// and — once the targets have left, the collector has delivered its
// backlog, and any attached replica has confirmed the full stream, or
// wait has elapsed — the server closes gracefully (monitor queues
// drained, End frames sent). wait <= 0 uses DefaultDrainWait.
func (s *Server) Drain(wait time.Duration) error {
	if !s.drainFlag.CompareAndSwap(false, true) {
		return nil
	}
	if wait <= 0 {
		wait = DefaultDrainWait
	}
	s.drains.Add(1)
	s.tel.drains.Inc()
	s.logf("poet server: draining (up to %v)", wait)
	close(s.drainCh)
	deadline := time.Now().Add(wait)
	for time.Now().Before(deadline) {
		if s.targetConnCount.Load() == 0 && s.collector.Drained() &&
			s.collector.replWait(s.collector.IngestCount(), 0) {
			break
		}
		time.Sleep(overloadPoll)
	}
	return s.Close()
}

// DefaultDrainWait bounds how long Drain waits for targets to flush and
// leave before closing anyway.
const DefaultDrainWait = 5 * time.Second

// abort tears down the server without any of the graceful-shutdown
// courtesies — no drain notices, no monitor queue flush, no End frames:
// connections are severed first, then handlers are collected. It is the
// in-process stand-in for SIGKILL, used by the failover tests to
// simulate a primary crash without a child process.
func (s *Server) abort() {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	ln := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	if !already {
		close(s.closing)
	}
	s.serveWG.Wait()
	s.wg.Wait()
}

// ---------------------------------------------------------------------
// Follower side: the Replicator client.

// ReplicaOption configures FollowPrimary.
type ReplicaOption func(*replCfg)

type replCfg struct {
	reconnectBudget time.Duration
	backoffBase     time.Duration
	backoffMax      time.Duration
	heartbeat       time.Duration
	peerTimeout     time.Duration
	dialTimeout     time.Duration
	writeTimeout    time.Duration
	logf            func(string, ...any)
}

// defaultReplicaBudget is deliberately shorter than the client default:
// the standby and primary share a failure domain boundary the clients
// wait behind — promotion must happen while reporter and monitor pools
// still have reconnect budget left to reach the promoted standby.
const defaultReplicaBudget = 10 * time.Second

func defaultReplCfg() replCfg {
	return replCfg{
		reconnectBudget: defaultReplicaBudget,
		backoffBase:     defaultBackoffBase,
		backoffMax:      defaultBackoffMax,
		heartbeat:       defaultHeartbeat,
		peerTimeout:     defaultPeerTimeout,
		dialTimeout:     defaultDialTimeout,
		writeTimeout:    defaultWriteTimeout,
		logf:            func(string, ...any) {},
	}
}

// WithReplicaReconnect bounds the cumulative backoff spent redialing the
// primary per outage; exhausting it declares the primary dead (the
// Replicator finishes with an ErrStreamInterrupted-wrapping error, the
// standby's cue to promote).
func WithReplicaReconnect(budget time.Duration) ReplicaOption {
	return func(c *replCfg) { c.reconnectBudget = budget }
}

// WithReplicaHeartbeat sets the confirmation/keep-alive cadence toward
// the primary and scales the dead-peer timeout to 5x.
func WithReplicaHeartbeat(d time.Duration) ReplicaOption {
	return func(c *replCfg) {
		if d > 0 {
			c.heartbeat = d
			c.peerTimeout = 5 * d
		}
	}
}

// WithReplicaPeerTimeout overrides how long the replica waits for a
// record or heartbeat before declaring the connection dead.
func WithReplicaPeerTimeout(d time.Duration) ReplicaOption {
	return func(c *replCfg) {
		if d > 0 {
			c.peerTimeout = d
		}
	}
}

// WithReplicaBackoff overrides the reconnect backoff schedule.
func WithReplicaBackoff(base, max time.Duration) ReplicaOption {
	return func(c *replCfg) { c.backoffBase, c.backoffMax = base, max }
}

// WithReplicaLog routes replication diagnostics to logf.
func WithReplicaLog(logf func(string, ...any)) ReplicaOption {
	return func(c *replCfg) {
		if logf != nil {
			c.logf = logf
		}
	}
}

// ReplicatorStats are a follower's cumulative replication counters.
type ReplicatorStats struct {
	// Applied counts event records applied to the local collector.
	Applied int
	// Head is the primary's last reported ingest count.
	Head int
	// Lag is Head - Applied, clamped at zero.
	Lag int
	// Reconnects counts successful session re-establishments.
	Reconnects int
}

// Replicator tails a primary's record stream into a local collector,
// keeping a warm standby one promotion away. It applies records through
// the public Report/RegisterTrace path — duplicates after a resume are
// absorbed as stale no-ops, and the local WAL (when the collector is
// durable) logs everything, so a crashed standby recovers and resumes
// from its exact applied offset.
type Replicator struct {
	addr string
	c    *Collector
	cfg  replCfg

	mu         sync.Mutex
	conn       net.Conn
	wake       chan struct{} // current connection's acker wake signal
	head       int
	reconnects int
	stopped    bool
	err        error

	stopCh chan struct{}
	done   chan struct{}
}

// FollowPrimary connects to the primary at addr as a replica and starts
// tailing its record stream into c. The initial dial and handshake are
// synchronous (a misconfigured primary fails fast); subsequent outages
// are ridden out by the reconnect budget. The caller decides what
// finishing means: watch Done and classify Err — ErrPrimaryDrained or
// an ErrStreamInterrupted wrap mean "promote", a terminal
// ErrSessionRejected means the pairing is wrong, nil means Stop was
// called (manual promotion).
func FollowPrimary(addr string, c *Collector, opts ...ReplicaOption) (*Replicator, error) {
	cfg := defaultReplCfg()
	for _, o := range opts {
		o(&cfg)
	}
	r := &Replicator{
		addr:   addr,
		c:      c,
		cfg:    cfg,
		stopCh: make(chan struct{}),
		done:   make(chan struct{}),
	}
	conn, dec, err := r.connect()
	if err != nil {
		return nil, fmt.Errorf("poet replica: %w", err)
	}
	go r.run(conn, dec)
	return r, nil
}

// connect dials the primary and completes the replica handshake,
// resuming from the local collector's ingest count.
func (r *Replicator) connect() (net.Conn, *gob.Decoder, error) {
	conn, err := net.DialTimeout("tcp", r.addr, r.cfg.dialTimeout)
	if err != nil {
		return nil, nil, fmt.Errorf("dial: %w", err)
	}
	enc := gob.NewEncoder(conn)
	_ = conn.SetWriteDeadline(time.Now().Add(r.cfg.writeTimeout))
	applied := r.c.IngestCount()
	if err := enc.Encode(hello{Magic: wireMagic, Role: roleReplica, ReplicaFrom: applied}); err != nil {
		_ = conn.Close()
		return nil, nil, fmt.Errorf("hello: %w", err)
	}
	dec := gob.NewDecoder(conn)
	hsTimeout := r.cfg.peerTimeout
	if hsTimeout < minHandshakeTimeout {
		hsTimeout = minHandshakeTimeout
	}
	_ = conn.SetReadDeadline(time.Now().Add(hsTimeout))
	var ack helloAck
	if err := dec.Decode(&ack); err != nil {
		_ = conn.Close()
		return nil, nil, fmt.Errorf("hello ack: %w", err)
	}
	if !ack.OK {
		_ = conn.Close()
		if ack.Retry {
			return nil, nil, fmt.Errorf("primary not accepting replicas yet: %s", ack.Error)
		}
		return nil, nil, fmt.Errorf("%w: %s", ErrSessionRejected, ack.Error)
	}
	wake := make(chan struct{}, 1)
	r.mu.Lock()
	r.conn = conn
	r.wake = wake
	r.mu.Unlock()
	// Confirmation sender for this connection: an ack immediately after
	// each applied burst (the barrier's latency), heartbeats when idle.
	go r.acker(conn, enc, wake)
	return conn, dec, nil
}

// signalAck wakes the current connection's acker; buffered so the apply
// loop never blocks.
func (r *Replicator) signalAck() {
	r.mu.Lock()
	wake := r.wake
	r.mu.Unlock()
	select {
	case wake <- struct{}{}:
	default:
	}
}

// acker streams replicaAck frames on one connection until it dies.
func (r *Replicator) acker(conn net.Conn, enc *gob.Encoder, wake chan struct{}) {
	t := time.NewTimer(r.cfg.heartbeat)
	defer t.Stop()
	last := -1
	for {
		hb := false
		select {
		case <-wake:
		case <-t.C:
			t.Reset(r.cfg.heartbeat)
			hb = true
		case <-r.stopCh:
			return
		}
		applied := r.c.IngestCount()
		if applied == last && !hb {
			continue
		}
		_ = conn.SetWriteDeadline(time.Now().Add(r.cfg.writeTimeout))
		if err := enc.Encode(&replicaAck{Applied: applied, Heartbeat: hb && applied == last}); err != nil {
			_ = conn.Close()
			return
		}
		last = applied
		if !hb {
			backoff.ResetTimer(t, r.cfg.heartbeat)
		}
	}
}

// run is the replica's session loop: apply the stream, reconnect on
// transport faults, finish on drain, stop, terminal rejection, or
// budget exhaustion.
func (r *Replicator) run(conn net.Conn, dec *gob.Decoder) {
	defer close(r.done)
	for {
		cause := r.session(conn, dec)
		_ = conn.Close()
		if errors.Is(cause, ErrPrimaryDrained) {
			r.finish(ErrPrimaryDrained)
			return
		}
		if r.isStopped() {
			r.finish(nil)
			return
		}
		if cause != nil && !isTransport(cause) {
			r.finish(cause)
			return
		}
		c, d, err := r.reconnect(cause)
		if err != nil {
			r.finish(err)
			return
		}
		if c == nil {
			// Stopped mid-backoff: reconnect bailed without a connection.
			r.finish(nil)
			return
		}
		conn, dec = c, d
	}
}

// isTransport reports whether cause is worth redialing: anything except
// a divergence the stream itself reported (apply errors, protocol
// violations) is.
func isTransport(err error) bool {
	var de *divergenceError
	return !errors.As(err, &de)
}

// divergenceError marks causes that redialing cannot fix: the local
// collector refused a record the primary ingested.
type divergenceError struct{ err error }

func (d *divergenceError) Error() string { return d.err.Error() }
func (d *divergenceError) Unwrap() error { return d.err }

// session applies one connection's stream until it ends.
func (r *Replicator) session(conn net.Conn, dec *gob.Decoder) error {
	for {
		_ = conn.SetReadDeadline(time.Now().Add(r.cfg.peerTimeout))
		var msg wireMsg
		if err := dec.Decode(&msg); err != nil {
			if isTimeout(err) {
				r.cfg.logf("poet replica: no record or heartbeat from %s in %v; reconnecting", r.addr, r.cfg.peerTimeout)
			}
			return err
		}
		if msg.Head > 0 {
			r.mu.Lock()
			if msg.Head > r.head {
				r.head = msg.Head
			}
			r.mu.Unlock()
		}
		switch {
		case msg.Drain, msg.End:
			return ErrPrimaryDrained
		case msg.Heartbeat:
			r.signalAck() // keep our side of the liveness conversation
		case msg.Trace != nil:
			r.c.RegisterTrace(msg.Trace.Name)
		case msg.Shard != nil:
			e := fromWire(msg.Shard)
			if err := r.c.SupplyRemoteSend(msg.Shard.MsgID, e.ID, e.VC); err != nil {
				// The primary applied this remote send; a local refusal
				// (e.g. sharding not enabled here) is a configuration
				// divergence redialing cannot fix.
				return &divergenceError{fmt.Errorf("poet replica: applying remote send %d: %w", msg.Shard.MsgID, err)}
			}
			r.signalAck()
		case msg.Raw != nil:
			err := r.c.Report(*msg.Raw)
			if err != nil && !errors.Is(err, ErrStaleEvent) {
				// The primary ingested this record; a local refusal means
				// the two collectors have diverged (or the local disk
				// died). Redialing replays the same record — surface it.
				return &divergenceError{fmt.Errorf("poet replica: applying %s/%d: %w", msg.Raw.Trace, msg.Raw.Seq, err)}
			}
			r.signalAck()
		}
	}
}

// reconnect redials the primary with backoff until the budget is
// exhausted.
func (r *Replicator) reconnect(cause error) (net.Conn, *gob.Decoder, error) {
	if r.cfg.reconnectBudget <= 0 {
		return nil, nil, fmt.Errorf("poet replica: %w (cause: %v; reconnection disabled)", ErrStreamInterrupted, cause)
	}
	bo := backoff.New(r.cfg.backoffBase, r.cfg.backoffMax)
	var slept time.Duration
	lastErr := cause
	for {
		if r.isStopped() {
			return nil, nil, nil // run() notices stopped and finishes nil
		}
		conn, dec, err := r.connect()
		if err == nil {
			r.mu.Lock()
			r.reconnects++
			r.mu.Unlock()
			r.cfg.logf("poet replica: resumed replication from %s at offset %d", r.addr, r.c.IngestCount())
			return conn, dec, nil
		}
		if errors.Is(err, ErrSessionRejected) {
			return nil, nil, err
		}
		lastErr = err
		d := bo.Next()
		if slept+d > r.cfg.reconnectBudget {
			return nil, nil, fmt.Errorf("poet replica: %w; primary unreachable for %v (last error: %v)", ErrStreamInterrupted, r.cfg.reconnectBudget, lastErr)
		}
		slept += d
		if !backoff.Sleep(d, r.stopCh) {
			return nil, nil, nil
		}
	}
}

func (r *Replicator) isStopped() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stopped
}

func (r *Replicator) finish(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.mu.Unlock()
}

// Stop detaches from the primary (manual promotion, e.g. SIGUSR1). The
// caller should wait on Done before serving.
func (r *Replicator) Stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	conn := r.conn
	r.mu.Unlock()
	close(r.stopCh)
	if conn != nil {
		_ = conn.Close()
	}
}

// Done is closed when the Replicator has stopped following, for any
// reason; Err then says why.
func (r *Replicator) Done() <-chan struct{} { return r.done }

// Err returns why following ended: nil (Stop was called),
// ErrPrimaryDrained (clean handoff), an error wrapping
// ErrStreamInterrupted (primary presumed dead — promote), or a terminal
// ErrSessionRejected wrap (misconfigured pairing — do not promote).
func (r *Replicator) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Stats returns the follower-side replication counters.
func (r *Replicator) Stats() ReplicatorStats {
	r.mu.Lock()
	head, rec := r.head, r.reconnects
	r.mu.Unlock()
	applied := r.c.IngestCount()
	lag := head - applied
	if lag < 0 {
		lag = 0
	}
	return ReplicatorStats{Applied: applied, Head: head, Lag: lag, Reconnects: rec}
}
