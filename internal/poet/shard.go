package poet

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"ocep/internal/backoff"
	"ocep/internal/event"
	"ocep/internal/pool"
	"ocep/internal/vclock"
)

// Horizontal sharding. A sharded collector tier splits the trace space
// across N collectors ("shards"): every trace has exactly one home
// shard that ingests, stamps, and linearizes its events. Three pieces
// make the composition equal to a single collector:
//
//   - Striped trace IDs: shard i numbers its home traces i, i+N,
//     i+2N, … so global trace IDs (and therefore vector-clock
//     positions) never collide across shards, and a merged monitor sees
//     one coherent coordinate space without any renumbering.
//   - The cross-shard exchange: delivering a send-like event appends a
//     shardExport record — the send's identity, MsgID, and full vector
//     timestamp — to an append-only export log. Peer shards tail that
//     log over the normal OCEP-POET-2 port (hello role "shard"), with
//     the timestamp delta-encoded exactly like monitor frames, so only
//     the changed entries of the exporting shard's frontier travel.
//     SupplyRemoteSend applies a record idempotently: a receive whose
//     send was delivered on a peer merges the exported stamp instead of
//     a local event's.
//   - The merge layer (internal/shard): one monitor subscribes to every
//     shard and interleaves the per-shard linearizations into a single
//     causally-consistent one, holding back an event until the
//     cross-shard part of its causal past (read off its timestamp) has
//     been emitted.
//
// Exchange resume is deliberately from-zero: export records are
// idempotent and self-describing, and after a crash recovery or a
// failover the peer's export order need not match the dead session's,
// so an offset-based resume could silently skip records. Re-streaming
// the log is always correct; SupplyRemoteSend absorbs duplicates.
//
// Replication composes: a sharded primary appends every fresh remote
// send to its replication record stream at the position it was applied
// (repRecord.Remote), so a warm standby rebuilds the identical
// linearization without tailing the peers itself — it must not, or
// remote-send arrival timing would make its delivery order diverge from
// the primary's. The standby starts its own peer followers only at
// promotion.

// shardExport is one record of the cross-shard export log: a delivered
// send-like event reduced to what a peer needs to stamp its receive.
type shardExport struct {
	MsgID uint64
	ID    event.ID
	VC    vclock.Clock
}

// remoteSend is a peer shard's exported send, keyed by MsgID in
// Collector.remoteSends.
type remoteSend struct {
	id event.ID
	vc vclock.Clock
}

// shardExportState is the export log plus its growth notification,
// guarded by the collector's mu.
type shardExportState struct {
	log []shardExport
	ch  chan struct{}
}

func (x *shardExportState) appendLocked(rec shardExport) {
	x.log = append(x.log, rec)
	close(x.ch)
	x.ch = make(chan struct{})
}

// EnableSharding makes the collector shard shardID of a numShards-wide
// tier: its home traces get striped global IDs and its delivered sends
// are exported for peer shards. Must be called at wiring time, before
// any trace is registered or event ingested, and is incompatible with
// SetRetention (the export log and remote-send table need the full
// stream). Idempotent for identical arguments.
func (c *Collector) EnableSharding(shardID, numShards int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if numShards < 1 || shardID < 0 || shardID >= numShards {
		return fmt.Errorf("poet: invalid shard %d of %d", shardID, numShards)
	}
	if c.sharded {
		if c.shardID == shardID && c.numShards == numShards {
			return nil
		}
		return fmt.Errorf("poet: collector is already shard %d of %d", c.shardID, c.numShards)
	}
	if c.retain > 0 {
		return errors.New("poet: sharding is incompatible with SetRetention (the export log and remote-send table need the full stream)")
	}
	if c.ingests > 0 || c.store.NumTraces() > 0 {
		return errors.New("poet: EnableSharding must be called before any trace is registered")
	}
	c.sharded = true
	c.shardID = shardID
	c.numShards = numShards
	c.remoteSends = make(map[uint64]remoteSend)
	c.heldRemote = make(map[uint64]time.Time)
	c.shardX = &shardExportState{ch: make(chan struct{})}
	return nil
}

// Sharded reports whether EnableSharding has been called.
func (c *Collector) Sharded() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sharded
}

// ShardStats summarizes a shard's side of the cross-shard exchange.
type ShardStats struct {
	// Enabled reports whether the collector is sharded.
	Enabled bool
	// ShardID and NumShards are the EnableSharding arguments.
	ShardID, NumShards int
	// HomeTraces counts the traces homed on this shard.
	HomeTraces int
	// Exports is the export log length (delivered sends).
	Exports int
	// RemoteSends counts fresh peer-shard send records applied.
	RemoteSends int
	// HeldEvents counts receives currently held because their send has
	// not arrived from a peer shard — the cross-shard exchange's
	// in-flight debt. Nonzero transiently; growing means a peer's
	// export stream is stalled.
	HeldEvents int
	// OldestHeld is the age of the longest-held such receive (zero when
	// none are held).
	OldestHeld time.Duration
}

// ShardStats returns the collector's sharding counters.
func (c *Collector) ShardStats() ShardStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := ShardStats{Enabled: c.sharded, ShardID: c.shardID, NumShards: c.numShards}
	if !c.sharded {
		return st
	}
	st.HomeTraces = c.shardLocals
	st.Exports = len(c.shardX.log)
	st.RemoteSends = len(c.remoteSends)
	now := time.Now()
	for m, since := range c.heldRemote {
		ws := c.recvWait[m]
		if len(ws) == 0 {
			// The waiter drained some other way (e.g. the trace ended);
			// drop the stale stamp rather than age it forever.
			delete(c.heldRemote, m)
			continue
		}
		st.HeldEvents += len(ws)
		if age := now.Sub(since); age > st.OldestHeld {
			st.OldestHeld = age
		}
	}
	return st
}

// hasSendLocked reports whether the send pairing msgID has been
// delivered locally or supplied by a peer shard — the receive gate of
// the delivery cascade.
func (c *Collector) hasSendLocked(msgID uint64) bool {
	if _, ok := c.sends[msgID]; ok {
		return true
	}
	_, ok := c.remoteSends[msgID]
	return ok
}

// SupplyRemoteSend applies one peer-shard export record: the identity
// and vector timestamp of a send delivered on its home shard, keyed by
// MsgID. Idempotent — duplicates (re-streamed logs, overlapping peer
// sessions, a send that turns out to be local) are absorbed — so peers
// may always re-stream from zero. A fresh record wakes any receives
// that were gated on it, and on a replicating primary it is appended to
// the record stream at this position so a standby applies it at the
// same point of its rebuild.
func (c *Collector) SupplyRemoteSend(msgID uint64, id event.ID, vc vclock.Clock) error {
	if msgID == 0 {
		return errors.New("poet: remote send has no message id")
	}
	c.mu.Lock()
	if !c.sharded {
		c.mu.Unlock()
		return errors.New("poet: SupplyRemoteSend on an unsharded collector")
	}
	if c.sendersSeen[msgID] {
		// The send is (or will be) delivered locally: the local stamp
		// wins, and this record is our own export echoed around the tier.
		c.mu.Unlock()
		return nil
	}
	if _, ok := c.remoteSends[msgID]; ok {
		c.mu.Unlock()
		return nil
	}
	// Normalize to the collector's stamping representation; both copy,
	// so the stored clock never aliases a decoder baseline.
	if c.sparse {
		vc = vclock.SparseOf(vc)
	} else {
		vc = vclock.DenseOf(vc)
	}
	c.remoteSends[msgID] = remoteSend{id: id, vc: vc}
	if c.repl != nil {
		c.repl.appendLocked(repRecord{Remote: &shardExport{MsgID: msgID, ID: id, VC: vc}})
	}
	c.tel.shardRemote.Inc()
	delete(c.heldRemote, msgID)
	if waiters := c.recvWait[msgID]; len(waiters) > 0 {
		delete(c.recvWait, msgID)
		for _, t := range waiters {
			c.drain(t)
		}
	}
	c.mu.Unlock()
	return nil
}

// shardRecordsFrom returns the export-log suffix starting at idx, the
// index just past it, and the growth channel (for an empty suffix).
// Records are immutable once appended, so the slice is safe to read
// without copying.
func (c *Collector) shardRecordsFrom(idx int) (recs []shardExport, next int, ch <-chan struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	x := c.shardX
	if idx < len(x.log) {
		recs = x.log[idx:len(x.log):len(x.log)]
	}
	return recs, len(x.log), x.ch
}

// ---------------------------------------------------------------------
// Server side: shard peer sessions.

// handleShard streams the collector's export log to one peer shard: the
// suffix past the peer's offset first, then live records as sends are
// delivered, with idle heartbeats carrying the export head. Timestamps
// are delta-encoded when the peer negotiated DeltaVC, so an idle or
// slowly-changing frontier costs a handful of entries per record. The
// peer never writes after its hello; a background read doubles as the
// close detector.
func (s *Server) handleShard(conn net.Conn, dec *gob.Decoder, h hello) error {
	c := s.collector
	enc := gob.NewEncoder(conn)
	var encMu sync.Mutex
	writeMsg := func(msg *wireMsg) error {
		encMu.Lock()
		defer encMu.Unlock()
		_ = conn.SetWriteDeadline(time.Now().Add(s.writeTimeout))
		return enc.Encode(msg)
	}
	sendHello := func(ack helloAck) error {
		encMu.Lock()
		defer encMu.Unlock()
		_ = conn.SetWriteDeadline(time.Now().Add(s.writeTimeout))
		return enc.Encode(&ack)
	}
	if !c.Sharded() {
		msg := "sharding not enabled on this collector"
		_ = sendHello(helloAck{Error: msg})
		return fmt.Errorf("shard peer %s: %s", conn.RemoteAddr(), msg)
	}
	_, head, _ := c.shardRecordsFrom(0)
	if h.ResumeFrom < 0 || h.ResumeFrom > head {
		msg := fmt.Sprintf("cannot resume shard exchange from offset %d (exported %d): this shard did not produce that stream", h.ResumeFrom, head)
		_ = sendHello(helloAck{Error: msg})
		return fmt.Errorf("shard peer %s: %s", conn.RemoteAddr(), msg)
	}
	if err := sendHello(helloAck{OK: true, DeltaVC: h.DeltaVC}); err != nil {
		return fmt.Errorf("shard hello ack: %w", err)
	}
	s.shardSessions.Add(1)
	s.tel.shardConns.Inc()
	s.logf("poet server: shard peer %s attached at export offset %d", conn.RemoteAddr(), h.ResumeFrom)

	// Shard peers never send after the hello; a background read doubles
	// as a close detector.
	done := make(chan struct{})
	go func() {
		buf := make([]byte, 1)
		_, _ = conn.Read(buf)
		close(done)
	}()

	denc := &deltaEncoder{}
	idx := h.ResumeFrom
	hb := time.NewTimer(s.hbInterval)
	defer hb.Stop()
	drain := s.drainCh
	for {
		recs, next, ch := c.shardRecordsFrom(idx)
		for i := range recs {
			rec := recs[i]
			var w *wireEvent
			if h.DeltaVC {
				// denc is touched only on this loop, so encoding order
				// equals stream order — the delta baseline's invariant.
				w = toWireDelta(&event.Event{ID: rec.ID, VC: rec.VC}, denc)
				s.shardVCEntries.Add(int64(len(w.VCTr)))
				s.tel.shardVCEntries.Add(int64(len(w.VCTr)))
			} else {
				w = toWire(&event.Event{ID: rec.ID, VC: rec.VC})
				s.shardVCEntries.Add(int64(len(w.VC)))
				s.tel.shardVCEntries.Add(int64(len(w.VC)))
			}
			w.MsgID = rec.MsgID
			if err := writeMsg(&wireMsg{Shard: w, Head: next}); err != nil {
				return fmt.Errorf("encoding to shard peer: %w", err)
			}
			s.shardRecords.Add(1)
			s.tel.shardRecords.Inc()
		}
		idx = next
		if len(recs) > 0 {
			// Re-check for records appended while this batch encoded
			// before parking.
			backoff.ResetTimer(hb, s.hbInterval)
			continue
		}
		select {
		case <-ch:
		case <-hb.C:
			hb.Reset(s.hbInterval)
			if err := writeMsg(&wireMsg{Heartbeat: true, Head: idx}); err != nil {
				return fmt.Errorf("heartbeat to shard peer: %w", err)
			}
			s.heartbeats.Add(1)
		case <-done:
			return nil
		case <-drain:
			// Advise the peer to move to this shard's standby; keep
			// serving until End/close for peers with nowhere to go.
			drain = nil
			if err := writeMsg(&wireMsg{Drain: true}); err != nil {
				return fmt.Errorf("drain frame to shard peer: %w", err)
			}
		case <-s.closing:
			err := writeMsg(&wireMsg{End: true})
			_ = conn.Close()
			return err
		}
	}
}

// ---------------------------------------------------------------------
// Follower side: the ShardFollower client.

// ShardOption configures FollowShardPeer.
type ShardOption func(*shardCfg)

type shardCfg struct {
	reconnectBudget time.Duration
	backoffBase     time.Duration
	backoffMax      time.Duration
	peerTimeout     time.Duration
	dialTimeout     time.Duration
	writeTimeout    time.Duration
	breakerAfter    int
	breakerProbe    time.Duration
	logf            func(string, ...any)
}

func defaultShardCfg() shardCfg {
	return shardCfg{
		reconnectBudget: defaultReconnectBudget,
		backoffBase:     defaultBackoffBase,
		backoffMax:      defaultBackoffMax,
		peerTimeout:     defaultPeerTimeout,
		dialTimeout:     defaultDialTimeout,
		writeTimeout:    defaultWriteTimeout,
		logf:            func(string, ...any) {},
	}
}

// WithShardReconnect bounds the cumulative backoff spent per outage
// redialing the peer's endpoint pool before the follower finishes with
// an ErrStreamInterrupted wrap.
func WithShardReconnect(budget time.Duration) ShardOption {
	return func(c *shardCfg) { c.reconnectBudget = budget }
}

// WithShardBackoff overrides the reconnect backoff schedule.
func WithShardBackoff(base, max time.Duration) ShardOption {
	return func(c *shardCfg) { c.backoffBase, c.backoffMax = base, max }
}

// WithShardPeerTimeout overrides how long the follower waits for a
// record or heartbeat before declaring the connection dead.
func WithShardPeerTimeout(d time.Duration) ShardOption {
	return func(c *shardCfg) {
		if d > 0 {
			c.peerTimeout = d
		}
	}
}

// WithShardBreaker arms the follower's circuit breaker: after n
// consecutive exhausted reconnect budgets the follower stops burning
// dial loops and opens the breaker, probing the peer's endpoints once
// every probe interval (half-open) until one accepts again, at which
// point the breaker closes and normal following resumes. Without a
// breaker (the default) an exhausted budget finishes the follower with
// an ErrStreamInterrupted wrap, as before.
func WithShardBreaker(n int, probe time.Duration) ShardOption {
	return func(c *shardCfg) {
		if n > 0 && probe > 0 {
			c.breakerAfter = n
			c.breakerProbe = probe
		}
	}
}

// WithShardLog routes shard-exchange diagnostics to logf.
func WithShardLog(logf func(string, ...any)) ShardOption {
	return func(c *shardCfg) {
		if logf != nil {
			c.logf = logf
		}
	}
}

// Breaker states, exported both through ShardFollowerStats and as the
// poet_shard_peer_breaker_state gauge values.
const (
	// BreakerClosed: the follower dials and follows normally.
	BreakerClosed = 0
	// BreakerHalfOpen: a probe is in flight after the open interval.
	BreakerHalfOpen = 1
	// BreakerOpen: the peer exhausted its reconnect budgets; the
	// follower only probes periodically.
	BreakerOpen = 2
)

// ShardFollowerStats are a follower's cumulative exchange counters.
type ShardFollowerStats struct {
	// Peer is the followed endpoint pool, as configured.
	Peer string
	// Received counts export records received, including idempotent
	// duplicates from from-zero re-streams.
	Received int
	// Head is the peer's last reported export-log length.
	Head int
	// Lag is Head minus the records received on the current session,
	// clamped at zero (sessions always re-stream from zero).
	Lag int
	// Reconnects counts successful session re-establishments.
	Reconnects int
	// Connected reports whether a session is currently established.
	Connected bool
	// SinceContact is the age of the last sign of life from the peer —
	// any decoded record, heartbeat, or successful handshake. At
	// creation it measures from follower start, so a tier that is still
	// coming up reads as recent contact, not a stall.
	SinceContact time.Duration
	// BreakerState is the circuit breaker's current state
	// (BreakerClosed / BreakerHalfOpen / BreakerOpen).
	BreakerState int
	// BudgetExhaustions counts reconnect budgets exhausted since the
	// last established session (resets to zero when one connects).
	BudgetExhaustions int
}

// ShardFollower tails one peer shard's export log into the local
// collector via SupplyRemoteSend. The endpoint pool covers the peer's
// failover pair ("primary,standby"): a drain notice or dead connection
// rotates, a standby's retriable rejection keeps the pool probing until
// promotion, and every (re)connection re-streams the export log from
// zero — always correct, because SupplyRemoteSend absorbs duplicates.
// The initial connection is asynchronous: at tier start-up the peers
// come up in arbitrary order, so the first dial rides the same
// reconnect budget as any outage.
type ShardFollower struct {
	peer  string
	eps   *pool.Pool
	addrs []string
	c     *Collector
	cfg   shardCfg

	mu          sync.Mutex
	conn        net.Conn
	received    int
	got         int // records received on the current session
	head        int
	reconnects  int
	sessions    int
	connected   bool
	lastContact time.Time
	breaker     int // BreakerClosed / BreakerHalfOpen / BreakerOpen
	exhaustions int // reconnect budgets exhausted since last session
	stopped     bool
	err         error

	stopCh chan struct{}
	done   chan struct{}
}

// FollowShardPeer starts tailing the peer shard behind addrs (a
// comma-separated failover pool) into c. It returns immediately; watch
// Done and classify Err when the follower finishes: nil means Stop,
// anything else means the peer stayed unreachable past the reconnect
// budget or the exchange is misconfigured.
func FollowShardPeer(addrs string, c *Collector, opts ...ShardOption) (*ShardFollower, error) {
	cfg := defaultShardCfg()
	for _, o := range opts {
		o(&cfg)
	}
	list := pool.ParseAddrs(addrs)
	if len(list) == 0 {
		return nil, fmt.Errorf("poet shard: %w", pool.ErrNoEndpoints)
	}
	if !c.Sharded() {
		return nil, errors.New("poet shard: FollowShardPeer needs a sharded collector (EnableSharding first)")
	}
	f := &ShardFollower{
		peer:        addrs,
		eps:         pool.New(list, cfg.backoffBase, cfg.backoffMax),
		addrs:       list,
		c:           c,
		cfg:         cfg,
		lastContact: time.Now(),
		stopCh:      make(chan struct{}),
		done:        make(chan struct{}),
	}
	go f.run()
	return f, nil
}

// shardApplyError marks causes redialing cannot fix: the local
// collector refused a record the peer exported (configuration
// divergence), or the delta stream desynchronized in a way a fresh
// handshake would only repeat.
type shardApplyError struct{ err error }

func (e *shardApplyError) Error() string { return e.err.Error() }
func (e *shardApplyError) Unwrap() error { return e.err }

func (f *ShardFollower) run() {
	defer close(f.done)
	for {
		conn, dec, delta, err := f.connect()
		if err != nil {
			if f.cfg.breakerAfter > 0 && errors.Is(err, ErrStreamInterrupted) {
				f.mu.Lock()
				f.exhaustions++
				tripped := f.exhaustions >= f.cfg.breakerAfter
				f.mu.Unlock()
				if !tripped {
					continue // burn another reconnect budget before tripping
				}
				conn, dec, delta, err = f.breakerLoop(err)
				if err != nil {
					f.finish(err)
					return
				}
			} else {
				f.finish(err)
				return
			}
		}
		if conn == nil {
			f.finish(nil) // stopped mid-backoff or mid-probe
			return
		}
		cause := f.session(conn, dec, delta)
		_ = conn.Close()
		if f.isStopped() {
			f.finish(nil)
			return
		}
		var ae *shardApplyError
		if errors.As(cause, &ae) {
			f.finish(cause)
			return
		}
		// Transport or drain: redial through the pool.
	}
}

// breakerLoop holds the breaker open after cause exhausted the
// configured number of reconnect budgets: instead of continuous dial
// loops, the follower sleeps the probe interval, then (half-open) tries
// one handshake against each pool endpoint. A success closes the
// breaker and returns the fresh session; a terminal rejection surfaces;
// anything else reopens. Returns a nil conn when stopped.
func (f *ShardFollower) breakerLoop(cause error) (net.Conn, *gob.Decoder, bool, error) {
	f.setBreaker(BreakerOpen)
	f.cfg.logf("poet shard: breaker OPEN for peer %s after %d exhausted reconnect budgets (%v); probing every %v",
		f.peer, f.cfg.breakerAfter, cause, f.cfg.breakerProbe)
	for {
		if !backoff.Sleep(f.cfg.breakerProbe, f.stopCh) {
			return nil, nil, false, nil
		}
		f.setBreaker(BreakerHalfOpen)
		for _, addr := range f.addrs {
			if f.isStopped() {
				return nil, nil, false, nil
			}
			conn, dec, delta, err := f.handshake(addr)
			if err == nil {
				f.eps.Success(addr)
				f.registerSession(conn)
				f.setBreaker(BreakerClosed)
				f.cfg.logf("poet shard: breaker closed; following %s again (export log from zero)", addr)
				return conn, dec, delta, nil
			}
			if errors.Is(err, ErrSessionRejected) {
				return nil, nil, false, err
			}
		}
		f.setBreaker(BreakerOpen)
	}
}

func (f *ShardFollower) setBreaker(state int) {
	f.mu.Lock()
	f.breaker = state
	f.mu.Unlock()
}

// registerSession records a fresh session's bookkeeping: the handshake
// counts as peer contact, and per-session counters restart.
func (f *ShardFollower) registerSession(conn net.Conn) {
	f.mu.Lock()
	f.conn = conn
	f.got = 0
	f.sessions++
	if f.sessions > 1 {
		f.reconnects++
	}
	f.connected = true
	f.exhaustions = 0
	f.lastContact = time.Now()
	f.mu.Unlock()
}

// connect completes one handshake against the peer's pool, pacing full
// failed rounds with the shared backoff until the per-outage budget is
// exhausted.
func (f *ShardFollower) connect() (net.Conn, *gob.Decoder, bool, error) {
	var slept time.Duration
	for {
		if f.isStopped() {
			return nil, nil, false, nil
		}
		addr := f.eps.Pick()
		conn, dec, delta, err := f.handshake(addr)
		if err == nil {
			f.eps.Success(addr)
			f.registerSession(conn)
			f.cfg.logf("poet shard: following %s (export log from zero)", addr)
			return conn, dec, delta, nil
		}
		if errors.Is(err, ErrSessionRejected) {
			return nil, nil, false, err
		}
		d := f.eps.Fail(addr, err)
		if d == 0 {
			continue // healthy alternative: try it immediately
		}
		if slept+d > f.cfg.reconnectBudget {
			sum := f.eps.ErrorSummary()
			if sum == nil {
				sum = err
			}
			return nil, nil, false, fmt.Errorf("poet shard: %w; peer %s unreachable for %v (%v)",
				ErrStreamInterrupted, f.peer, f.cfg.reconnectBudget, sum)
		}
		slept += d
		if !backoff.Sleep(d, f.stopCh) {
			return nil, nil, false, nil
		}
	}
}

func (f *ShardFollower) handshake(addr string) (net.Conn, *gob.Decoder, bool, error) {
	conn, err := net.DialTimeout("tcp", addr, f.cfg.dialTimeout)
	if err != nil {
		return nil, nil, false, fmt.Errorf("dial: %w", err)
	}
	enc := gob.NewEncoder(conn)
	_ = conn.SetWriteDeadline(time.Now().Add(f.cfg.writeTimeout))
	if err := enc.Encode(hello{Magic: wireMagic, Role: roleShard, ResumeFrom: 0, DeltaVC: true}); err != nil {
		_ = conn.Close()
		return nil, nil, false, fmt.Errorf("hello: %w", err)
	}
	dec := gob.NewDecoder(conn)
	hsTimeout := f.cfg.peerTimeout
	if hsTimeout < minHandshakeTimeout {
		hsTimeout = minHandshakeTimeout
	}
	_ = conn.SetReadDeadline(time.Now().Add(hsTimeout))
	var ack helloAck
	if err := dec.Decode(&ack); err != nil {
		_ = conn.Close()
		return nil, nil, false, fmt.Errorf("hello ack: %w", err)
	}
	if !ack.OK {
		_ = conn.Close()
		if ack.Retry {
			return nil, nil, false, fmt.Errorf("session deferred: %s", ack.Error)
		}
		return nil, nil, false, fmt.Errorf("%w: %s", ErrSessionRejected, ack.Error)
	}
	return conn, dec, ack.DeltaVC, nil
}

// session applies one connection's export stream until it ends.
func (f *ShardFollower) session(conn net.Conn, dec *gob.Decoder, delta bool) error {
	defer func() {
		f.mu.Lock()
		f.connected = false
		f.mu.Unlock()
	}()
	ddec := &deltaDecoder{sparse: f.c.SparseClocks()}
	addr := conn.RemoteAddr().String()
	for {
		_ = conn.SetReadDeadline(time.Now().Add(f.cfg.peerTimeout))
		var msg wireMsg
		if err := dec.Decode(&msg); err != nil {
			if isTimeout(err) {
				f.cfg.logf("poet shard: no record or heartbeat from %s in %v; reconnecting", addr, f.cfg.peerTimeout)
			}
			return err
		}
		f.mu.Lock()
		f.lastContact = time.Now()
		f.mu.Unlock()
		if msg.Head > 0 {
			f.mu.Lock()
			if msg.Head > f.head {
				f.head = msg.Head
			}
			f.mu.Unlock()
		}
		switch {
		case msg.Drain, msg.End:
			// The peer is going away; rotate toward its standby. When no
			// alternative looks healthy on a mere drain notice, hold the
			// session — the peer keeps exporting until its End frame.
			if msg.End || f.eps.HealthyAlternative(addr) {
				f.eps.Demote(addr)
				return fmt.Errorf("peer %s %s", addr, map[bool]string{true: "ended its stream", false: "draining"}[msg.End])
			}
		case msg.Heartbeat:
			// Head already tracked above.
		case msg.Shard != nil:
			var vc vclock.Clock
			if delta {
				c, err := ddec.decode(msg.Shard)
				if err != nil {
					return &shardApplyError{fmt.Errorf("poet shard: %w", err)}
				}
				vc = c
			} else {
				vc = vclock.VC(msg.Shard.VC)
			}
			id := event.ID{Trace: event.TraceID(msg.Shard.Trace), Index: msg.Shard.Index}
			if err := f.c.SupplyRemoteSend(msg.Shard.MsgID, id, vc); err != nil {
				return &shardApplyError{fmt.Errorf("poet shard: applying export %d from %s: %w", msg.Shard.MsgID, addr, err)}
			}
			f.mu.Lock()
			f.received++
			f.got++
			f.mu.Unlock()
		}
	}
}

func (f *ShardFollower) isStopped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stopped
}

func (f *ShardFollower) finish(err error) {
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
}

// Stop detaches from the peer. Wait on Done for the session goroutine.
func (f *ShardFollower) Stop() {
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		return
	}
	f.stopped = true
	conn := f.conn
	f.mu.Unlock()
	close(f.stopCh)
	if conn != nil {
		_ = conn.Close()
	}
}

// Done is closed when the follower has stopped, for any reason; Err
// then says why.
func (f *ShardFollower) Done() <-chan struct{} { return f.done }

// Err returns why following ended: nil (Stop), an ErrStreamInterrupted
// wrap (peer unreachable past the budget), a terminal
// ErrSessionRejected wrap, or a shard apply error (configuration
// divergence).
func (f *ShardFollower) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// Stats returns the follower's exchange counters.
func (f *ShardFollower) Stats() ShardFollowerStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	lag := f.head - f.got
	if lag < 0 {
		lag = 0
	}
	return ShardFollowerStats{
		Peer:              f.peer,
		Received:          f.received,
		Head:              f.head,
		Lag:               lag,
		Reconnects:        f.reconnects,
		Connected:         f.connected,
		SinceContact:      time.Since(f.lastContact),
		BreakerState:      f.breaker,
		BudgetExhaustions: f.exhaustions,
	}
}

// Stalled reports whether the peer has shown no sign of life — no
// record, heartbeat, or successful handshake — for at least threshold.
// A non-positive threshold disables the check, and a stopped follower
// is never stalled (it is simply gone). This is the stall watchdog's
// predicate: a peer whose export stream is silent past the threshold is
// holding back every receive gated on its sends, so readiness probes
// should surface it by name.
func (f *ShardFollower) Stalled(threshold time.Duration) bool {
	if threshold <= 0 {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.stopped {
		return false
	}
	return time.Since(f.lastContact) >= threshold
}
