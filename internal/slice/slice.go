// Package slice extracts causal slices from collected computations: the
// minimal causally closed sub-computation containing a set of events
// (typically a reported match). The paper positions OCEP as the online
// complement of offline, in-depth analysis — "a user may identify a
// runtime safety violation using our tool and then restrict offline
// analysis … to particular traces that are involved" (Section II); a
// causal slice is exactly that restriction: it contains every event that
// could have influenced the match and nothing else, and it replays
// through the collector as a valid computation of its own.
package slice

import (
	"fmt"

	"ocep/internal/event"
	"ocep/internal/poet"
)

// Cut is the per-trace inclusive prefix length of a slice: Cut[t] events
// of trace t belong to the slice.
type Cut []int

// Of computes the causal slice of the given events over the finished
// store: the least consistent cut containing them. Because entry t of an
// event's vector timestamp counts exactly its causal predecessors on
// trace t, the slice is the per-trace maximum of the events' timestamp
// entries — O(k·n) for k events over n traces.
func Of(st *event.Store, events []*event.Event) (Cut, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("slice: no events given")
	}
	cut := make(Cut, st.NumTraces())
	for _, e := range events {
		if e == nil {
			return nil, fmt.Errorf("slice: nil event")
		}
		if st.Get(e.ID) == nil {
			return nil, fmt.Errorf("slice: event %s not in store", e.ID)
		}
		for t := range cut {
			if v := e.VC.Get(t); v > cut[t] {
				cut[t] = v
			}
		}
	}
	return cut, nil
}

// Size returns the number of events in the slice.
func (c Cut) Size() int {
	n := 0
	for _, x := range c {
		n += x
	}
	return n
}

// Contains reports whether the event ID falls inside the slice.
func (c Cut) Contains(id event.ID) bool {
	t := int(id.Trace)
	return t >= 0 && t < len(c) && id.Index >= 1 && id.Index <= c[t]
}

// Events lists the slice's events in a valid delivery order (the
// restriction of the given delivery order to the slice).
func (c Cut) Events(ordered []*event.Event) []*event.Event {
	var out []*event.Event
	for _, e := range ordered {
		if c.Contains(e.ID) {
			out = append(out, e)
		}
	}
	return out
}

// Replay reports the slice into a fresh collector (trace names and
// numbering preserved), returning it. The result is a self-contained
// computation: every receive's send is inside the slice, so delivery
// drains completely; its store can be dumped, viewed, or matched
// offline.
func (c Cut) Replay(st *event.Store, ordered []*event.Event) (*poet.Collector, error) {
	out := poet.NewCollector()
	out.RetainLog()
	for t := 0; t < st.NumTraces(); t++ {
		out.RegisterTrace(st.TraceName(event.TraceID(t)))
	}
	var msg uint64
	ids := make(map[event.ID]uint64)
	for _, e := range c.Events(ordered) {
		raw := poet.RawEvent{
			Trace: st.TraceName(e.ID.Trace),
			Seq:   e.ID.Index,
			Kind:  e.Kind,
			Type:  e.Type,
			Text:  e.Text,
		}
		switch e.Kind {
		case event.KindSend, event.KindSyncRelease:
			msg++
			ids[e.ID] = msg
			raw.MsgID = msg
		case event.KindReceive, event.KindSyncAcquire:
			id, ok := ids[e.Partner]
			if !ok {
				return nil, fmt.Errorf("slice: receive %s inside the slice but its send %s is not (slice not causally closed?)",
					e.ID, e.Partner)
			}
			raw.MsgID = id
		}
		if err := out.Report(raw); err != nil {
			return nil, fmt.Errorf("slice: replaying %s: %w", e.ID, err)
		}
	}
	if !out.Drained() {
		return nil, fmt.Errorf("slice: replay left %d events undelivered", out.Pending())
	}
	return out, nil
}
