package slice

import (
	"math/rand"
	"testing"

	"ocep/internal/event"
	"ocep/internal/event/eventtest"
)

func TestOfLeastConsistentCut(t *testing.T) {
	// p0: a1, s(send), a3 ; p1: b1, r(recv), b3 ; p2: untouched noise.
	st, evs := eventtest.Build(3, []eventtest.Op{
		{Trace: 0, Kind: event.KindInternal, Type: "a"},
		{Trace: 0, Kind: event.KindSend, Type: "s", Label: "m"},
		{Trace: 0, Kind: event.KindInternal, Type: "a"},
		{Trace: 1, Kind: event.KindInternal, Type: "b"},
		{Trace: 1, Kind: event.KindReceive, Type: "r", From: "m"},
		{Trace: 1, Kind: event.KindInternal, Type: "b"},
		{Trace: 2, Kind: event.KindInternal, Type: "z"},
	})
	recv := evs[4]
	cut, err := Of(st, []*event.Event{recv})
	if err != nil {
		t.Fatal(err)
	}
	// The receive's causal past: both p0 events up to the send, p1 up
	// to the receive, nothing of p2.
	if cut[0] != 2 || cut[1] != 2 || cut[2] != 0 {
		t.Fatalf("cut = %v want [2 2 0]", cut)
	}
	if cut.Size() != 4 {
		t.Fatalf("size = %d want 4", cut.Size())
	}
	if !cut.Contains(recv.ID) {
		t.Fatalf("slice must contain its defining event")
	}
	if cut.Contains(event.ID{Trace: 0, Index: 3}) || cut.Contains(event.ID{Trace: 2, Index: 1}) {
		t.Fatalf("slice contains events outside the causal past")
	}
}

func TestOfErrors(t *testing.T) {
	st, evs := eventtest.Build(1, []eventtest.Op{
		{Trace: 0, Kind: event.KindInternal, Type: "a"},
	})
	if _, err := Of(st, nil); err == nil {
		t.Fatalf("empty input must fail")
	}
	if _, err := Of(st, []*event.Event{nil}); err == nil {
		t.Fatalf("nil event must fail")
	}
	ghost := &event.Event{ID: event.ID{Trace: 5, Index: 9}}
	if _, err := Of(st, []*event.Event{ghost}); err == nil {
		t.Fatalf("unknown event must fail")
	}
	_ = evs
}

// TestSliceIsConsistentAndMinimal: on random computations, the slice of
// any event set (a) contains the set, (b) is causally closed (every
// event's causal past is inside), and (c) is minimal (removing the last
// event of any nonempty trace prefix breaks closure or coverage).
func TestSliceIsConsistentAndMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 20; round++ {
		st, evs := eventtest.Random(rng, eventtest.RandomConfig{
			Traces: 3 + rng.Intn(3), Events: 60,
			SendProb: 0.3, RecvProb: 0.3,
		})
		// Pick 1-3 random events.
		var picked []*event.Event
		for i := 0; i < 1+rng.Intn(3); i++ {
			picked = append(picked, evs[rng.Intn(len(evs))])
		}
		cut, err := Of(st, picked)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range picked {
			if !cut.Contains(p.ID) {
				t.Fatalf("round %d: slice misses picked event %s", round, p.ID)
			}
		}
		// Closure: every event in the slice has its whole causal past
		// in the slice.
		for _, e := range cut.Events(evs) {
			for t2 := 0; t2 < st.NumTraces(); t2++ {
				if e.VC.Get(t2) > cut[t2] {
					t.Fatalf("round %d: slice not causally closed at %s / trace %d", round, e.ID, t2)
				}
			}
		}
		// Minimality: each trace's prefix length equals the max
		// timestamp entry over picked events.
		for t2 := range cut {
			want := 0
			for _, p := range picked {
				if v := p.VC.Get(t2); v > want {
					want = v
				}
			}
			if cut[t2] != want {
				t.Fatalf("round %d: trace %d prefix %d want %d", round, t2, cut[t2], want)
			}
		}
	}
}

// TestReplayRoundTrip: a slice replays into a self-contained collector
// whose events match the originals (IDs, kinds, clocks restricted to the
// slice).
func TestReplayRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	st, evs := eventtest.Random(rng, eventtest.RandomConfig{
		Traces: 4, Events: 80, SendProb: 0.3, RecvProb: 0.3,
	})
	target := evs[len(evs)-1]
	cut, err := Of(st, []*event.Event{target})
	if err != nil {
		t.Fatal(err)
	}
	c, err := cut.Replay(st, evs)
	if err != nil {
		t.Fatal(err)
	}
	st2 := c.Store()
	if st2.TotalEvents() != cut.Size() {
		t.Fatalf("replayed %d events, slice has %d", st2.TotalEvents(), cut.Size())
	}
	for t2 := 0; t2 < st.NumTraces(); t2++ {
		tid := event.TraceID(t2)
		if st.TraceName(tid) != st2.TraceName(tid) {
			t.Fatalf("trace name mismatch on %d", t2)
		}
		for i, e2 := range st2.Events(tid) {
			e1 := st.Events(tid)[i]
			if e1.Kind != e2.Kind || e1.Type != e2.Type || e1.Text != e2.Text {
				t.Fatalf("event %s differs after replay", e1.ID)
			}
			// Vector clocks agree on slice traces (the slice is the
			// causal past, so clocks are unchanged).
			if !e1.VC.Equal(e2.VC) {
				t.Fatalf("clock of %s differs: %s vs %s", e1.ID, e1.VC, e2.VC)
			}
		}
	}
	// The slice dump round-trips through the file format too.
	dir := t.TempDir()
	if err := c.DumpFile(dir + "/slice.poet.gz"); err != nil {
		t.Fatal(err)
	}
}
