package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// echoServer accepts connections and echoes every byte back until the
// peer closes. Returns its address and a stop function.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				_, _ = io.Copy(conn, conn)
			}()
		}
	}()
	return ln.Addr().String()
}

func startProxy(t *testing.T, target string) *Proxy {
	t.Helper()
	p, err := Listen(target)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	return p
}

func roundTrip(t *testing.T, conn net.Conn, msg []byte) []byte {
	t.Helper()
	if _, err := conn.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, len(msg))
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	return got
}

func TestProxyForwards(t *testing.T) {
	p := startProxy(t, echoServer(t))
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("hello through the proxy")
	if got := roundTrip(t, conn, msg); !bytes.Equal(got, msg) {
		t.Fatalf("echo = %q want %q", got, msg)
	}
	if st := p.Stats(); st.Conns != 1 || st.Bytes < int64(2*len(msg)) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestProxyChunkedWritesPreserveBytes(t *testing.T) {
	p := startProxy(t, echoServer(t))
	// 3-byte chunks with a gap: a 4 KiB message crosses the proxy in
	// ~1400 fragments, each its own TCP write.
	p.SetChunk(3, 100*time.Microsecond)
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := bytes.Repeat([]byte("abcdefgh"), 512)
	if got := roundTrip(t, conn, msg); !bytes.Equal(got, msg) {
		t.Fatal("chunked forwarding corrupted the stream")
	}
}

func TestProxyLatency(t *testing.T) {
	p := startProxy(t, echoServer(t))
	p.SetLatency(50 * time.Millisecond)
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	roundTrip(t, conn, []byte("ping"))
	// Two forwarding hops (there and back), 50ms each.
	if elapsed := time.Since(start); elapsed < 90*time.Millisecond {
		t.Fatalf("round trip took %v, want >= ~100ms of injected latency", elapsed)
	}
}

func TestProxyCutAllResets(t *testing.T) {
	p := startProxy(t, echoServer(t))
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	roundTrip(t, conn, []byte("warmup"))

	if n := p.CutAll(); n != 1 {
		t.Fatalf("CutAll cut %d connections, want 1", n)
	}
	// The client observes a hard error (RST or close), not a timeout.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	_, err = conn.Read(buf)
	if err == nil {
		t.Fatal("read after CutAll succeeded, want error")
	}
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		t.Fatalf("read after CutAll timed out; the reset never reached the client")
	}

	// The proxy still accepts fresh connections after the cut.
	conn2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if got := roundTrip(t, conn2, []byte("after")); string(got) != "after" {
		t.Fatal("proxy dead after CutAll")
	}
}

func TestProxyKillAfterBytes(t *testing.T) {
	p := startProxy(t, echoServer(t))
	p.SetKillAfter(1000)
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Stream until the budget trips. The write side may outlive the
	// budget briefly (buffers), so drive reads and expect failure well
	// before 10x the budget.
	var total int
	buf := make([]byte, 256)
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	for total < 10000 {
		if _, err := conn.Write(buf); err != nil {
			break
		}
		n, err := conn.Read(buf)
		total += n
		if err != nil {
			break
		}
	}
	if total >= 10000 {
		t.Fatalf("forwarded %d bytes; kill budget of 1000 never tripped", total)
	}
	if st := p.Stats(); st.Resets == 0 {
		t.Fatalf("stats = %+v, want a recorded reset", st)
	}
}

func TestProxyBlackholeStallsThenResumes(t *testing.T) {
	p := startProxy(t, echoServer(t))
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	roundTrip(t, conn, []byte("warmup"))

	p.SetBlackhole(true)
	if _, err := conn.Write([]byte("stalled")); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	buf := make([]byte, 7)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("read succeeded during blackhole")
	}

	p.SetBlackhole(false)
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatalf("read after blackhole lifted: %v", err)
	}
	if string(buf) != "stalled" {
		t.Fatalf("post-blackhole read = %q", buf)
	}
}

func TestProxyConcurrentConnections(t *testing.T) {
	p := startProxy(t, echoServer(t))
	p.SetChunk(7, 0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", p.Addr())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer conn.Close()
			msg := []byte(strings.Repeat(string(rune('a'+i)), 400))
			if _, err := conn.Write(msg); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			got := make([]byte, len(msg))
			_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			if _, err := io.ReadFull(conn, got); err != nil {
				t.Errorf("read: %v", err)
				return
			}
			if !bytes.Equal(got, msg) {
				t.Errorf("conn %d: stream corrupted", i)
			}
		}(i)
	}
	wg.Wait()
}

// A one-direction blackhole stalls only the selected side: with the
// return path blackholed, writes keep flowing to the server but echoes
// never come back; clearing it releases the queued bytes.
func TestProxyAsymmetricBlackhole(t *testing.T) {
	p := startProxy(t, echoServer(t))
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("pre-fault")
	if got := roundTrip(t, conn, msg); !bytes.Equal(got, msg) {
		t.Fatalf("echo = %q want %q", got, msg)
	}

	p.SetBlackholeDir(ServerToClient, true)
	if _, err := conn.Write([]byte("into the hole")); err != nil {
		t.Fatalf("client->server write should still flow: %v", err)
	}
	buf := make([]byte, 64)
	_ = conn.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	if n, err := conn.Read(buf); err == nil {
		t.Fatalf("read %d echoed bytes through a server->client blackhole", n)
	} else if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("read = %v, want a deadline timeout (connection must stay open)", err)
	}

	// Healing releases the held bytes: nothing was lost.
	p.SetBlackholeDir(ServerToClient, false)
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	got := make([]byte, len("into the hole"))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
	if string(got) != "into the hole" {
		t.Fatalf("post-heal echo = %q", got)
	}
}

// A directional drop discards bytes silently while the link stays up:
// the sender observes write progress, the receiver sees an idle peer,
// and traffic dropped during the cut is gone after healing.
func TestProxyAsymmetricDrop(t *testing.T) {
	p := startProxy(t, echoServer(t))
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	p.SetDropDir(ClientToServer, true)
	if _, err := conn.Write([]byte("lost forever")); err != nil {
		t.Fatalf("write into a drop must succeed (sender sees progress): %v", err)
	}
	buf := make([]byte, 64)
	_ = conn.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	if n, err := conn.Read(buf); err == nil {
		t.Fatalf("read %d bytes echoed from a dropped request", n)
	} else if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("read = %v, want a deadline timeout", err)
	}

	// Heal: new traffic flows, the dropped bytes never arrive.
	p.SetDropDir(ClientToServer, false)
	msg := []byte("after heal")
	if got := roundTrip(t, conn, msg); !bytes.Equal(got, msg) {
		t.Fatalf("post-heal echo = %q want %q", got, msg)
	}
}

// Directional latency penalizes only one side: a server->client delay
// slows the echo, a client->server setting of zero leaves the upstream
// untouched, and clearing restores the round trip.
func TestProxyAsymmetricLatency(t *testing.T) {
	p := startProxy(t, echoServer(t))
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("timed")

	p.SetLatencyDir(ServerToClient, 120*time.Millisecond)
	start := time.Now()
	if got := roundTrip(t, conn, msg); !bytes.Equal(got, msg) {
		t.Fatalf("echo = %q want %q", got, msg)
	}
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Fatalf("round trip %v with 120ms server->client latency", d)
	}

	p.SetLatencyDir(ServerToClient, 0)
	start = time.Now()
	if got := roundTrip(t, conn, msg); !bytes.Equal(got, msg) {
		t.Fatalf("echo = %q want %q", got, msg)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("round trip %v after clearing latency", d)
	}
}

// The symmetric setters are shorthand for Both: SetBlackhole(false)
// clears a blackhole installed directionally.
func TestProxyDirectionBothCoversDirectional(t *testing.T) {
	p := startProxy(t, echoServer(t))
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	p.SetBlackholeDir(ClientToServer, true)
	p.SetBlackhole(false)
	msg := []byte("cleared symmetrically")
	if got := roundTrip(t, conn, msg); !bytes.Equal(got, msg) {
		t.Fatalf("echo = %q want %q", got, msg)
	}
	for _, d := range []Direction{ClientToServer, ServerToClient, Both} {
		if d.String() == "" {
			t.Fatalf("Direction(%d) has no name", d)
		}
	}
}
