// Package faultnet is a fault-injection TCP proxy for wire-protocol
// tests: it sits between a client and a server on the loopback and
// degrades the link on demand — added latency, partial (chunked)
// writes that split application messages across many TCP segments,
// mid-stream connection resets, byte-budgeted kills, and blackholes
// that stall forwarding without closing anything. Latency, blackholes,
// and silent drops can be scoped to one direction of the link, so a
// test can partition the export path of a sharded tier while the
// reverse path stays healthy — the asymmetric failure a real network
// produces. The faults are the ones a fault-tolerant wire layer must
// survive, produced deterministically enough to assert on.
package faultnet

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Direction selects which side of a proxied link a fault applies to.
type Direction int

const (
	// ClientToServer is the upstream direction: bytes flowing from the
	// dialing client toward the proxied target.
	ClientToServer Direction = iota
	// ServerToClient is the downstream direction: bytes flowing from
	// the proxied target back to the client.
	ServerToClient
	// Both applies a fault symmetrically; the non-Dir setter methods
	// are shorthand for it.
	Both
)

// String names the direction for diagnostics.
func (d Direction) String() string {
	switch d {
	case ClientToServer:
		return "client->server"
	case ServerToClient:
		return "server->client"
	default:
		return "both"
	}
}

// sides expands a Direction into the pump indexes it covers.
func (d Direction) sides() []int {
	switch d {
	case ClientToServer:
		return []int{0}
	case ServerToClient:
		return []int{1}
	default:
		return []int{0, 1}
	}
}

// Proxy forwards TCP connections to a fixed target address, applying
// the currently configured faults to every byte it relays. All fault
// knobs are safe to flip while connections are live; latency, chunking,
// blackholes, and drops apply to in-flight connections immediately,
// while a kill budget is armed per connection at accept time.
type Proxy struct {
	target string
	ln     net.Listener

	latency   [2]atomic.Int64 // per-direction nanoseconds added per read-forward hop
	blackhole [2]atomic.Bool  // per-direction: stall forwarding without closing
	drop      [2]atomic.Bool  // per-direction: silently discard forwarded bytes
	chunk     atomic.Int64    // max bytes per downstream write; 0 = unlimited
	chunkGap  atomic.Int64    // nanoseconds between chunks of one write
	killAfter atomic.Int64    // per-connection byte budget armed at accept; 0 = off

	conns  atomic.Int64 // total accepted
	resets atomic.Int64 // connections reset by CutAll or a kill budget
	bytes  atomic.Int64 // total bytes forwarded (both directions)

	mu     sync.Mutex
	links  map[*link]struct{}
	closed bool
	wg     sync.WaitGroup
}

// link is one proxied connection pair.
type link struct {
	client, server net.Conn
	budget         atomic.Int64 // remaining bytes before a kill; <0 = unlimited
	once           sync.Once
}

// reset tears both sides down abruptly. SO_LINGER 0 turns the close
// into a TCP RST, so the peers observe a genuine connection reset
// rather than an orderly FIN.
func (l *link) reset() {
	l.once.Do(func() {
		for _, c := range []net.Conn{l.client, l.server} {
			if tc, ok := c.(*net.TCPConn); ok {
				_ = tc.SetLinger(0)
			}
			_ = c.Close()
		}
	})
}

// Listen starts a proxy on an ephemeral loopback port forwarding to
// target ("host:port").
func Listen(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("faultnet: listen: %w", err)
	}
	p := &Proxy{target: target, ln: ln, links: make(map[*link]struct{})}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.acceptLoop()
	}()
	return p, nil
}

// Addr is the proxy's listen address; point the client here instead of
// at the real target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetLatency adds d of one-way delay to every forwarded read (applies
// in both directions, so round trips grow by ~2d).
func (p *Proxy) SetLatency(d time.Duration) { p.SetLatencyDir(Both, d) }

// SetLatencyDir adds d of delay to every forwarded read in one
// direction only (or Both); the other direction keeps its own setting.
func (p *Proxy) SetLatencyDir(dir Direction, d time.Duration) {
	for _, s := range dir.sides() {
		p.latency[s].Store(int64(d))
	}
}

// SetChunk caps downstream writes at n bytes, splitting every relayed
// buffer into n-byte TCP writes with gap between them. This lands
// application-level messages (e.g. one gob frame) across multiple
// segments, exercising peers against partial reads. n <= 0 restores
// unlimited writes.
func (p *Proxy) SetChunk(n int, gap time.Duration) {
	p.chunk.Store(int64(n))
	p.chunkGap.Store(int64(gap))
}

// SetKillAfter arms every subsequently accepted connection with a byte
// budget: after n bytes have been forwarded (both directions combined)
// the connection is reset mid-stream. n <= 0 disarms. Existing
// connections keep the budget they were accepted with.
func (p *Proxy) SetKillAfter(n int64) { p.killAfter.Store(n) }

// SetBlackhole stalls all forwarding (existing and new connections)
// without closing anything — bytes pile up untransmitted, as in a
// partition whose TCP sessions have not yet timed out. Unset to let
// traffic flow again.
func (p *Proxy) SetBlackhole(on bool) { p.SetBlackholeDir(Both, on) }

// SetBlackholeDir stalls forwarding in one direction only (or Both):
// the stalled pump parks without closing, so TCP backpressure
// eventually reaches the sender, while the reverse direction keeps
// flowing — an asymmetric partition. Unset to let the queued bytes
// drain.
func (p *Proxy) SetBlackholeDir(dir Direction, on bool) {
	for _, s := range dir.sides() {
		p.blackhole[s].Store(on)
	}
}

// SetDropDir silently discards every byte forwarded in one direction
// (or Both) while the connection — and the reverse direction — stay
// open: a one-way cut. Unlike a blackhole the sender observes write
// progress, so it keeps transmitting into the void; the receiver sees
// an idle but live peer. Unset to resume forwarding (bytes dropped in
// between are gone, as on a real lossy cut).
func (p *Proxy) SetDropDir(dir Direction, on bool) {
	for _, s := range dir.sides() {
		p.drop[s].Store(on)
	}
}

// CutAll resets every live proxied connection (TCP RST, not FIN) and
// returns how many were cut. New connections are still accepted: this
// is a transient fault, not an outage.
func (p *Proxy) CutAll() int {
	p.mu.Lock()
	links := make([]*link, 0, len(p.links))
	for l := range p.links {
		links = append(links, l)
	}
	p.mu.Unlock()
	for _, l := range links {
		l.reset()
	}
	p.resets.Add(int64(len(links)))
	return len(links)
}

// Stats is a snapshot of the proxy's counters.
type Stats struct {
	Conns  int   // total connections accepted
	Live   int   // connections currently proxied
	Resets int   // connections reset by CutAll or a kill budget
	Bytes  int64 // bytes forwarded, both directions combined
}

// Stats returns a snapshot of the proxy's counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	live := len(p.links)
	p.mu.Unlock()
	return Stats{
		Conns:  int(p.conns.Load()),
		Live:   live,
		Resets: int(p.resets.Load()),
		Bytes:  p.bytes.Load(),
	}
}

// Close stops accepting and tears down all live connections.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.CutAll()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.conns.Add(1)
		server, err := net.DialTimeout("tcp", p.target, 3*time.Second)
		if err != nil {
			_ = client.Close()
			continue
		}
		l := &link{client: client, server: server}
		if n := p.killAfter.Load(); n > 0 {
			l.budget.Store(n)
		} else {
			l.budget.Store(-1)
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			l.reset()
			return
		}
		p.links[l] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(2)
		go p.pump(l, 0, client, server) // ClientToServer
		go p.pump(l, 1, server, client) // ServerToClient
	}
}

// pump relays one direction of a link (side 0 = client->server, side 1
// = server->client), applying the live fault knobs to every buffer it
// forwards.
func (p *Proxy) pump(l *link, side int, src, dst net.Conn) {
	defer p.wg.Done()
	defer func() {
		// Either side ending ends the link; a half-open proxy session is
		// not a fault any of our protocols care about.
		_ = l.client.Close()
		_ = l.server.Close()
		p.mu.Lock()
		delete(p.links, l)
		p.mu.Unlock()
	}()
	buf := make([]byte, 16*1024)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			for p.blackhole[side].Load() {
				// Stall without closing. The poll is coarse; a blackhole is
				// measured in hundreds of milliseconds in tests.
				time.Sleep(5 * time.Millisecond)
				p.mu.Lock()
				closed := p.closed
				p.mu.Unlock()
				if closed {
					return
				}
			}
			if d := p.latency[side].Load(); d > 0 {
				time.Sleep(time.Duration(d))
			}
			if p.drop[side].Load() {
				// One-way cut: the bytes vanish, the link stays up.
				continue
			}
			if !p.forward(l, dst, buf[:n]) {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// forward writes one relayed buffer, chunked if configured, charging
// the link's kill budget. Returns false once the link is dead.
func (p *Proxy) forward(l *link, dst net.Conn, b []byte) bool {
	chunk := int(p.chunk.Load())
	gap := time.Duration(p.chunkGap.Load())
	for len(b) > 0 {
		w := b
		if chunk > 0 && len(w) > chunk {
			w = w[:chunk]
		}
		// A kill budget expires mid-stream, possibly mid-message: forward
		// only the remaining allowance, then reset.
		var killing bool
		if budget := l.budget.Load(); budget >= 0 {
			if int64(len(w)) >= budget {
				w = w[:budget]
				killing = true
			} else {
				l.budget.Store(budget - int64(len(w)))
			}
		}
		if len(w) > 0 {
			if _, err := dst.Write(w); err != nil {
				return false
			}
			p.bytes.Add(int64(len(w)))
		}
		if killing {
			l.reset()
			p.resets.Add(1)
			return false
		}
		b = b[len(w):]
		if gap > 0 && len(b) > 0 {
			time.Sleep(gap)
		}
	}
	return true
}
