// Package backoff is the one shared implementation of the retry timing
// used across the wire layer: the reporter's and monitor client's
// reconnect loops, the endpoint pool's per-endpoint health cooldowns,
// and the server's overload retry parking all draw their delays from
// here, so the jitter/cap/growth behaviour is defined (and property
// tested) exactly once.
package backoff

import (
	"math/rand"
	"time"
)

// Backoff produces exponentially growing, jittered delays: attempt n
// draws uniformly from [d/2, 3d/2) for d = min(base<<n, max), so a fleet
// of peers severed by the same fault does not retry in lockstep. The
// zero value is not usable; construct with New.
type Backoff struct {
	base, max time.Duration
	attempt   int
}

// DefaultBase and DefaultMax are the schedule used when New is given
// non-positive bounds.
const (
	DefaultBase = 50 * time.Millisecond
	DefaultMax  = 2 * time.Second
)

// New returns a backoff schedule growing from base to max. Non-positive
// base falls back to DefaultBase; a max below base is raised to base.
func New(base, max time.Duration) *Backoff {
	if base <= 0 {
		base = DefaultBase
	}
	if max < base {
		max = base
	}
	return &Backoff{base: base, max: max}
}

// Next returns the delay before the next attempt and advances the
// schedule.
func (b *Backoff) Next() time.Duration {
	d := b.base
	for i := 0; i < b.attempt && d < b.max; i++ {
		d *= 2
	}
	if d > b.max {
		d = b.max
	}
	b.attempt++
	// Uniform jitter in [d/2, 3d/2). rand's global source is
	// concurrency-safe.
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// Reset restarts the schedule after a success.
func (b *Backoff) Reset() { b.attempt = 0 }

// Attempt returns how many delays have been handed out since the last
// Reset.
func (b *Backoff) Attempt() int { return b.attempt }

// Sleep waits for d or until cancel is closed, whichever comes first,
// and reports whether the full delay elapsed (false means cancelled).
// This is the interruptible replacement for a bare time.Sleep inside a
// retry loop: a client Close must not block behind the tail of a
// multi-second backoff. A nil cancel degrades to a plain timed wait.
func Sleep(d time.Duration, cancel <-chan struct{}) bool {
	if d <= 0 {
		select {
		case <-cancel:
			return false
		default:
			return true
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-cancel:
		return false
	}
}

// ResetTimer safely rearms a timer whose channel may hold a stale tick.
func ResetTimer(t *time.Timer, d time.Duration) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	t.Reset(d)
}
