package backoff

import (
	"testing"
	"time"
)

// TestBackoffDelayBounds is the property test pinning the schedule's
// contract: attempt n draws from [d/2, 3d/2) for d = min(base<<n, max),
// so every delay is bounded, the schedule grows until the cap, and no
// delay ever exceeds 1.5x the cap.
func TestBackoffDelayBounds(t *testing.T) {
	const trials = 200
	base, max := 10*time.Millisecond, 160*time.Millisecond
	for trial := 0; trial < trials; trial++ {
		b := New(base, max)
		for attempt := 0; attempt < 12; attempt++ {
			want := base
			for i := 0; i < attempt && want < max; i++ {
				want *= 2
			}
			if want > max {
				want = max
			}
			got := b.Next()
			if got < want/2 || got >= want/2+want {
				t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, got, want/2, want/2+want)
			}
			if got >= max/2+max {
				t.Fatalf("attempt %d: delay %v exceeds the jittered cap %v", attempt, got, max/2+max)
			}
		}
	}
}

func TestBackoffResetRestartsSchedule(t *testing.T) {
	b := New(10*time.Millisecond, time.Second)
	for i := 0; i < 8; i++ {
		b.Next()
	}
	if b.Attempt() != 8 {
		t.Fatalf("attempt = %d, want 8", b.Attempt())
	}
	b.Reset()
	if b.Attempt() != 0 {
		t.Fatalf("attempt after reset = %d, want 0", b.Attempt())
	}
	// Post-reset the first delay is drawn from the base window again.
	if d := b.Next(); d < 5*time.Millisecond || d >= 15*time.Millisecond {
		t.Fatalf("post-reset delay %v outside the base window [5ms, 15ms)", d)
	}
}

func TestBackoffDefaults(t *testing.T) {
	b := New(0, 0)
	if b.base != DefaultBase || b.max != DefaultBase {
		t.Fatalf("New(0,0) = {base %v, max %v}; want base %v with max raised to base", b.base, b.max, DefaultBase)
	}
	b = New(time.Second, time.Millisecond)
	if b.max != time.Second {
		t.Fatalf("max below base not raised: max=%v", b.max)
	}
}

func TestSleepElapses(t *testing.T) {
	cancel := make(chan struct{})
	start := time.Now()
	if !Sleep(10*time.Millisecond, cancel) {
		t.Fatal("Sleep reported cancellation without a cancel")
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("Sleep returned after %v, want >= 10ms", elapsed)
	}
}

func TestSleepCancelledPromptly(t *testing.T) {
	cancel := make(chan struct{})
	go func() {
		time.Sleep(5 * time.Millisecond)
		close(cancel)
	}()
	start := time.Now()
	if Sleep(30*time.Second, cancel) {
		t.Fatal("Sleep reported a full elapse despite the cancel")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled Sleep took %v; the whole point is returning promptly", elapsed)
	}
}

func TestSleepCancelledBeforeCall(t *testing.T) {
	cancel := make(chan struct{})
	close(cancel)
	if Sleep(30*time.Second, cancel) {
		t.Fatal("Sleep ignored an already-closed cancel channel")
	}
	if !Sleep(0, nil) {
		t.Fatal("zero-delay Sleep with nil cancel must elapse")
	}
}

func TestResetTimerAbsorbsStaleTick(t *testing.T) {
	tm := time.NewTimer(time.Nanosecond)
	time.Sleep(5 * time.Millisecond) // let the tick land in the channel
	ResetTimer(tm, 10*time.Millisecond)
	select {
	case <-tm.C:
		t.Fatal("stale tick survived ResetTimer")
	case <-time.After(2 * time.Millisecond):
	}
	select {
	case <-tm.C: // the rearmed tick arrives
	case <-time.After(time.Second):
		t.Fatal("rearmed timer never fired")
	}
}
