// Package mpi is a small message-passing runtime in the style of MPI,
// built on goroutines and channels, with POET instrumentation hooks. It
// stands in for the MPI environment of the paper's evaluation (Section
// V-B): ranks are goroutines, point-to-point sends have eager-buffer
// semantics (a send blocks only when the receiver's buffer is full, so a
// send-receive cycle "rarely" manifests as an actual deadlock, exactly
// the behaviour Section V-C1 describes), and receives may name a source
// rank or accept any source.
//
// Every communication action is reported to a POET sink as a raw event;
// the collector reconstructs causality, so the application itself never
// handles vector clocks (Section V-C2).
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ocep/internal/event"
	"ocep/internal/poet"
)

// Sink consumes raw instrumented events. *poet.Collector and
// *poet.Reporter both satisfy it; both are internally locked and safe
// for concurrent reporting from many ranks.
type Sink interface {
	Report(poet.RawEvent) error
}

// AnySource makes Recv accept a message from any rank (the
// MPI_ANY_SOURCE wild-card).
const AnySource = -1

// Default event types reported by the runtime.
const (
	// TypeSend is an eagerly buffered send.
	TypeSend = "mpi_send"
	// TypeSendBlock is a send that found the destination buffer full
	// and blocked (the unsafe state of the deadlock case study).
	TypeSendBlock = "mpi_send_block"
	// TypeRecv is a receive.
	TypeRecv = "mpi_recv"
)

// Config configures a world.
type Config struct {
	// Ranks is the number of processes.
	Ranks int
	// EagerLimit is the per-rank inbox capacity: sends beyond it block
	// until the receiver drains (rendezvous). Zero means 64.
	EagerLimit int
	// Sink receives the instrumented events. Nil disables
	// instrumentation (useful for runtime-only tests).
	Sink Sink
	// TracePrefix names rank traces "<prefix><rank>"; default "p".
	TracePrefix string
}

// Message is a received message.
type Message struct {
	Src     int
	Tag     string
	Payload any
	msgID   uint64
}

type envelope struct {
	Message
}

// msgIDs issues process-wide unique message identifiers, so several
// worlds (and the ucpp runtime) can report into one collector without
// identifier collisions.
var msgIDs atomic.Uint64

// NextMsgID returns a fresh process-wide unique message identifier.
// Exposed for other runtimes and hand-rolled instrumentation that share
// a collector with mpi worlds.
func NextMsgID() uint64 { return msgIDs.Add(1) }

// World is one simulated MPI computation.
type World struct {
	cfg   Config
	inbox []chan envelope
	errMu sync.Mutex
	errs  []error
	ranks []*Rank
}

// NewWorld builds a world. Use Run for the common spawn-and-wait shape.
func NewWorld(cfg Config) (*World, error) {
	if cfg.Ranks < 1 {
		return nil, fmt.Errorf("mpi: world needs at least one rank, got %d", cfg.Ranks)
	}
	if cfg.EagerLimit == 0 {
		cfg.EagerLimit = 64
	}
	if cfg.TracePrefix == "" {
		cfg.TracePrefix = "p"
	}
	w := &World{cfg: cfg}
	w.inbox = make([]chan envelope, cfg.Ranks)
	w.ranks = make([]*Rank, cfg.Ranks)
	for i := range w.inbox {
		w.inbox[i] = make(chan envelope, cfg.EagerLimit)
		w.ranks[i] = &Rank{world: w, id: i}
	}
	return w, nil
}

// Run executes body once per rank concurrently and waits for all of them.
// It returns the instrumentation errors collected during the run, if any.
func Run(cfg Config, body func(*Rank)) error {
	w, err := NewWorld(cfg)
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	for _, r := range w.ranks {
		wg.Add(1)
		go func(r *Rank) {
			defer wg.Done()
			body(r)
		}(r)
	}
	wg.Wait()
	return w.Err()
}

// Rank returns rank i's handle (for custom spawning arrangements).
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// Err returns the instrumentation errors collected so far, joined.
func (w *World) Err() error {
	w.errMu.Lock()
	defer w.errMu.Unlock()
	return errors.Join(w.errs...)
}

func (w *World) fail(err error) {
	w.errMu.Lock()
	defer w.errMu.Unlock()
	w.errs = append(w.errs, err)
}

// TraceName returns the trace name of a rank.
func (w *World) TraceName(rank int) string {
	return fmt.Sprintf("%s%d", w.cfg.TracePrefix, rank)
}

// Rank is the per-process handle: its methods are only safe from the
// goroutine running that rank's body.
type Rank struct {
	world *World
	id    int
	seq   int
	// pending holds messages pulled from the inbox while looking for a
	// specific source or tag.
	pending []envelope
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Seq returns the number of events this rank has reported so far (the
// sequence number of its most recent event).
func (r *Rank) Seq() int { return r.seq }

// Size returns the world size.
func (r *Rank) Size() int { return r.world.cfg.Ranks }

// TraceName returns this rank's trace name.
func (r *Rank) TraceName() string { return r.world.TraceName(r.id) }

func (r *Rank) report(kind event.Kind, typ, text string, msgID uint64) {
	sink := r.world.cfg.Sink
	if sink == nil {
		return
	}
	r.seq++
	err := sink.Report(poet.RawEvent{
		Trace: r.TraceName(),
		Seq:   r.seq,
		Kind:  kind,
		Type:  typ,
		Text:  text,
		MsgID: msgID,
	})
	if err != nil {
		r.world.fail(fmt.Errorf("mpi: rank %d instrumentation: %w", r.id, err))
	}
}

// Internal reports an internal (non-communication) event with the given
// pattern-matchable type and text.
func (r *Rank) Internal(typ, text string) {
	r.report(event.KindInternal, typ, text, 0)
}

// Send sends a tagged payload to dst with eager-buffer semantics,
// reporting a TypeSend event (TypeSendBlock if the buffer was full at
// call time). The event text is the destination's trace name.
func (r *Rank) Send(dst int, tag string, payload any) {
	r.SendT(dst, "", tag, payload)
}

// SendT is Send with an explicit event type ("" for the default).
func (r *Rank) SendT(dst int, typ, tag string, payload any) {
	if dst < 0 || dst >= r.Size() || dst == r.id {
		r.world.fail(fmt.Errorf("mpi: rank %d: invalid send destination %d", r.id, dst))
		return
	}
	id := NextMsgID()
	env := envelope{Message{Src: r.id, Tag: tag, Payload: payload, msgID: id}}
	ch := r.world.inbox[dst]
	if typ == "" {
		typ = TypeSend
		if len(ch) == cap(ch) {
			typ = TypeSendBlock
		}
	}
	// The send event is reported before the blocking enqueue: it marks
	// the call, as MPI tracing does; the collector holds the matching
	// receive until this report arrives anyway.
	r.report(event.KindSend, typ, r.world.TraceName(dst), id)
	ch <- env
}

// Recv receives the next message from src (or AnySource), reporting a
// TypeRecv event whose text is the sender's trace name. Tagged variants:
// RecvTag.
func (r *Rank) Recv(src int) Message {
	return r.recv(src, "", "")
}

// RecvTag receives the next message from src (or AnySource) carrying the
// given tag.
func (r *Rank) RecvTag(src int, tag string) Message {
	return r.recv(src, tag, "")
}

// RecvT is Recv with an explicit event type for the receive event.
func (r *Rank) RecvT(src int, typ string) Message {
	return r.recv(src, "", typ)
}

func matches(env envelope, src int, tag string) bool {
	if src != AnySource && env.Src != src {
		return false
	}
	return tag == "" || env.Tag == tag
}

// Barrier tag used by the collective implementation.
const barrierTag = "__mpi_barrier"

// Barrier synchronizes all ranks: no rank returns until every rank has
// entered. It is implemented as a gather to rank 0 followed by a
// broadcast, so the instrumentation records real messages and the
// barrier is visible as causality (every pre-barrier event happens
// before every post-barrier event of every rank).
func (r *Rank) Barrier() {
	if r.Size() == 1 {
		return
	}
	if r.id == 0 {
		for i := 1; i < r.Size(); i++ {
			r.RecvTag(i, barrierTag)
		}
		for i := 1; i < r.Size(); i++ {
			r.Send(i, barrierTag, nil)
		}
		return
	}
	r.Send(0, barrierTag, nil)
	r.RecvTag(0, barrierTag)
}

// Bcast broadcasts a payload from the root rank to every other rank and
// returns the payload on all ranks (the root's argument is returned
// unchanged on the root).
func (r *Rank) Bcast(root int, payload any) any {
	if r.Size() == 1 {
		return payload
	}
	if r.id == root {
		for i := 0; i < r.Size(); i++ {
			if i == root {
				continue
			}
			r.Send(i, "__mpi_bcast", payload)
		}
		return payload
	}
	m := r.RecvTag(root, "__mpi_bcast")
	return m.Payload
}

func (r *Rank) recv(src int, tag, typ string) Message {
	var env envelope
	found := false
	for i, p := range r.pending {
		if matches(p, src, tag) {
			env = p
			r.pending = append(r.pending[:i], r.pending[i+1:]...)
			found = true
			break
		}
	}
	for !found {
		next := <-r.world.inbox[r.id]
		if matches(next, src, tag) {
			env = next
			found = true
		} else {
			r.pending = append(r.pending, next)
		}
	}
	if typ == "" {
		typ = TypeRecv
	}
	r.report(event.KindReceive, typ, r.world.TraceName(env.Src), env.msgID)
	return env.Message
}
