package mpi

import (
	"fmt"
	"sync"
	"testing"

	"ocep/internal/event"
	"ocep/internal/poet"
)

func TestPingPong(t *testing.T) {
	c := poet.NewCollector()
	err := Run(Config{Ranks: 2, Sink: c}, func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, "ping", 42)
			m := r.Recv(1)
			if m.Payload.(int) != 43 {
				t.Errorf("pong payload = %v", m.Payload)
			}
		case 1:
			m := r.Recv(0)
			r.Send(0, "pong", m.Payload.(int)+1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Delivered(); got != 4 {
		t.Fatalf("delivered = %d want 4", got)
	}
	if !c.Drained() {
		t.Fatalf("collector not drained")
	}
	// Causality: p0's send happens before p1's receive, which happens
	// before p1's send, which happens before p0's receive.
	st := c.Store()
	p0, _ := st.TraceByName("p0")
	p1, _ := st.TraceByName("p1")
	s0 := st.Get(event.ID{Trace: p0, Index: 1})
	r1 := st.Get(event.ID{Trace: p1, Index: 1})
	s1 := st.Get(event.ID{Trace: p1, Index: 2})
	r0 := st.Get(event.ID{Trace: p0, Index: 2})
	if !s0.Before(r1) || !r1.Before(s1) || !s1.Before(r0) {
		t.Fatalf("causal chain broken")
	}
}

func TestAnySource(t *testing.T) {
	c := poet.NewCollector()
	const ranks = 5
	err := Run(Config{Ranks: ranks, Sink: c}, func(r *Rank) {
		if r.ID() == 0 {
			seen := map[int]bool{}
			for i := 1; i < ranks; i++ {
				m := r.Recv(AnySource)
				seen[m.Src] = true
			}
			if len(seen) != ranks-1 {
				t.Errorf("saw %d distinct sources, want %d", len(seen), ranks-1)
			}
		} else {
			r.Send(0, "hello", r.ID())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Delivered(); got != 2*(ranks-1) {
		t.Fatalf("delivered = %d want %d", got, 2*(ranks-1))
	}
}

func TestSelectiveReceiveReordersPending(t *testing.T) {
	err := Run(Config{Ranks: 3}, func(r *Rank) {
		switch r.ID() {
		case 0:
			// Wait for rank 2's message first even though rank 1's may
			// arrive earlier.
			m2 := r.Recv(2)
			m1 := r.Recv(1)
			if m2.Src != 2 || m1.Src != 1 {
				t.Errorf("selective receive wrong: %d, %d", m2.Src, m1.Src)
			}
		default:
			r.Send(0, "x", nil)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTagFiltering(t *testing.T) {
	err := Run(Config{Ranks: 2}, func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, "a", "first")
			r.Send(1, "b", "second")
		case 1:
			mb := r.RecvTag(0, "b")
			ma := r.RecvTag(0, "a")
			if mb.Payload.(string) != "second" || ma.Payload.(string) != "first" {
				t.Errorf("tag filtering wrong: %v %v", mb.Payload, ma.Payload)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendBlockEventType(t *testing.T) {
	c := poet.NewCollector()
	w, err := NewWorld(Config{Ranks: 2, EagerLimit: 1, Sink: c})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		r := w.Rank(0)
		r.Send(1, "x", 1) // buffered eagerly
		r.Send(1, "x", 2) // buffer full: reported as blocked
	}()
	go func() {
		defer wg.Done()
		r := w.Rank(1)
		r.Recv(0)
		r.Recv(0)
	}()
	wg.Wait()
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	st := c.Store()
	p0, _ := st.TraceByName("p0")
	types := []string{}
	for _, e := range st.Events(p0) {
		types = append(types, e.Type)
	}
	if types[0] != TypeSend {
		t.Errorf("first send type = %q", types[0])
	}
	// The second send may or may not observe a full buffer depending on
	// scheduling; both types are legal, but the text must always be the
	// destination.
	for _, e := range st.Events(p0) {
		if e.Text != "p1" {
			t.Errorf("send text = %q want p1", e.Text)
		}
	}
}

func TestInvalidDestination(t *testing.T) {
	err := Run(Config{Ranks: 2}, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(5, "x", nil)
		}
	})
	if err == nil {
		t.Fatalf("invalid destination must surface in Err")
	}
}

func TestInternalEvents(t *testing.T) {
	c := poet.NewCollector()
	err := Run(Config{Ranks: 1, Sink: c}, func(r *Rank) {
		r.Internal("phase", "init")
		r.Internal("phase", "done")
	})
	if err != nil {
		t.Fatal(err)
	}
	st := c.Store()
	p0, _ := st.TraceByName("p0")
	evs := st.Events(p0)
	if len(evs) != 2 || evs[0].Text != "init" || evs[1].Text != "done" {
		t.Fatalf("internal events wrong: %v", evs)
	}
}

func TestWorldValidation(t *testing.T) {
	if _, err := NewWorld(Config{Ranks: 0}); err == nil {
		t.Fatalf("zero ranks must fail")
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	c := poet.NewCollector()
	const ranks = 6
	err := Run(Config{Ranks: ranks, Sink: c}, func(r *Rank) {
		r.Internal("pre", "")
		r.Barrier()
		r.Internal("post", "")
	})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Drained() {
		t.Fatalf("collector not drained")
	}
	// Causality: every pre event happens before every post event.
	st := c.Store()
	var pres, posts []*event.Event
	for tr := 0; tr < st.NumTraces(); tr++ {
		for _, e := range st.Events(event.TraceID(tr)) {
			switch e.Type {
			case "pre":
				pres = append(pres, e)
			case "post":
				posts = append(posts, e)
			}
		}
	}
	if len(pres) != ranks || len(posts) != ranks {
		t.Fatalf("pre/post counts wrong: %d/%d", len(pres), len(posts))
	}
	for _, p := range pres {
		for _, q := range posts {
			if !p.Before(q) {
				t.Fatalf("barrier broken: %s not before %s", p.ID, q.ID)
			}
		}
	}
}

func TestBcast(t *testing.T) {
	const ranks = 5
	var mu sync.Mutex
	got := map[int]any{}
	err := Run(Config{Ranks: ranks}, func(r *Rank) {
		payload := any(nil)
		if r.ID() == 2 {
			payload = "the-value"
		}
		v := r.Bcast(2, payload)
		mu.Lock()
		got[r.ID()] = v
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank, v := range got {
		if v != "the-value" {
			t.Fatalf("rank %d received %v", rank, v)
		}
	}
}

func TestBarrierSingleRank(t *testing.T) {
	if err := Run(Config{Ranks: 1}, func(r *Rank) {
		r.Barrier()
		if v := r.Bcast(0, 42); v != 42 {
			t.Errorf("single-rank bcast = %v", v)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestManyRanksStress(t *testing.T) {
	c := poet.NewCollector()
	const ranks = 16
	err := Run(Config{Ranks: ranks, Sink: c}, func(r *Rank) {
		// Ring: send right, receive left, a few rounds.
		right := (r.ID() + 1) % ranks
		left := (r.ID() - 1 + ranks) % ranks
		for round := 0; round < 20; round++ {
			r.Send(right, "tok", fmt.Sprintf("%d/%d", r.ID(), round))
			r.Recv(left)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c.Delivered(), ranks*20*2; got != want {
		t.Fatalf("delivered = %d want %d", got, want)
	}
	if !c.Drained() {
		t.Fatalf("undelivered events remain")
	}
}
