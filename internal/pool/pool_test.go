package pool

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestParseAddrs(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"a:1", []string{"a:1"}},
		{"a:1,b:2", []string{"a:1", "b:2"}},
		{" a:1 , b:2 ,", []string{"a:1", "b:2"}},
		{",,", nil},
		{"", nil},
	}
	for _, c := range cases {
		got := ParseAddrs(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("ParseAddrs(%q) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("ParseAddrs(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestFailoverRotationAndDelays(t *testing.T) {
	p := New([]string{"a", "b"}, 10*time.Millisecond, 80*time.Millisecond)
	if got := p.Pick(); got != "a" {
		t.Fatalf("initial Pick = %q, want a", got)
	}
	// First failure on the current endpoint fails over to the healthy
	// peer with no delay at all.
	if d := p.Fail("a", errors.New("down")); d != 0 {
		t.Fatalf("failover onto a healthy peer delayed %v, want 0", d)
	}
	if got := p.Pick(); got != "b" {
		t.Fatalf("after a fails, Pick = %q, want b", got)
	}
	if p.Failovers() != 1 {
		t.Fatalf("failovers = %d, want 1", p.Failovers())
	}
	// b failing too wraps back onto mid-streak a: the whole set is down,
	// so the shared round backoff kicks in.
	if d := p.Fail("b", errors.New("down too")); d <= 0 {
		t.Fatalf("full-round failure delayed %v, want > 0", d)
	}
	if got := p.Pick(); got != "a" {
		t.Fatalf("after b fails, Pick = %q, want a", got)
	}
	// Delays grow while the whole set stays down.
	d1 := p.Fail("a", errors.New("still down"))
	var d2 time.Duration
	for i := 0; i < 6; i++ {
		d2 = p.Fail([]string{"a", "b"}[p.curIndex()], errors.New("still down"))
	}
	if d2 < d1/2 {
		t.Fatalf("round backoff not growing: first %v, later %v", d1, d2)
	}
	// Success resets b's streak and the round schedule — but not a's
	// streak: a never recovered, so failing over back onto it draws a
	// fresh base-window delay rather than an immediate retry.
	p.Success("b")
	if got := p.Pick(); got != "b" {
		t.Fatalf("after Success(b), Pick = %q, want b", got)
	}
	if d := p.Fail("b", errors.New("down again")); d < 5*time.Millisecond || d >= 15*time.Millisecond {
		t.Fatalf("failover onto mid-streak a delayed %v, want a base-window delay", d)
	}
}

// curIndex is a test-only peek at the rotation position.
func (p *Pool) curIndex() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cur
}

func TestSingleEndpointDegradesToClassicBackoff(t *testing.T) {
	p := New([]string{"solo"}, 10*time.Millisecond, 80*time.Millisecond)
	d := p.Fail("solo", errors.New("down"))
	if d < 5*time.Millisecond || d >= 15*time.Millisecond {
		t.Fatalf("first single-endpoint delay %v outside the base window", d)
	}
	if p.Failovers() != 0 {
		t.Fatalf("single endpoint recorded a failover")
	}
	var last time.Duration
	for i := 0; i < 8; i++ {
		last = p.Fail("solo", errors.New("down"))
	}
	if last < 40*time.Millisecond { // capped window is [40ms, 120ms)
		t.Fatalf("single-endpoint backoff failed to reach the cap window: %v", last)
	}
}

func TestDemoteRotatesWithoutCharging(t *testing.T) {
	p := New([]string{"a", "b"}, 0, 0)
	p.Demote("a")
	if got := p.Pick(); got != "b" {
		t.Fatalf("after Demote(a), Pick = %q, want b", got)
	}
	if p.Failovers() != 1 {
		t.Fatalf("demote failover not counted: %d", p.Failovers())
	}
	for _, h := range p.Snapshot() {
		if h.ConsecutiveFailures != 0 || h.LastErr != nil {
			t.Fatalf("demote charged endpoint %s: %+v", h.Addr, h)
		}
	}
	// Demoting an endpoint that is not current is a no-op.
	p.Demote("a")
	if got := p.Pick(); got != "b" {
		t.Fatalf("demote of non-current endpoint moved the pool to %q", got)
	}
	if p.Failovers() != 1 {
		t.Fatalf("no-op demote counted a failover")
	}
}

func TestErrorSummaryNamesEveryEndpoint(t *testing.T) {
	p := New([]string{"a:1", "b:2", "c:3"}, 0, 0)
	if p.ErrorSummary() != nil {
		t.Fatal("fresh pool reported an error summary")
	}
	errB := errors.New("connection refused")
	p.Fail("a:1", errors.New("no route to host"))
	p.Fail("b:2", errB)
	sum := p.ErrorSummary()
	if sum == nil {
		t.Fatal("no summary after failures")
	}
	msg := sum.Error()
	if !strings.Contains(msg, "a:1") || !strings.Contains(msg, "no route to host") {
		t.Fatalf("summary missing a:1's error: %q", msg)
	}
	if !strings.Contains(msg, "b:2") || !strings.Contains(msg, "connection refused") {
		t.Fatalf("summary missing b:2's error: %q", msg)
	}
	if strings.Contains(msg, "c:3") {
		t.Fatalf("summary mentions the endpoint that never failed: %q", msg)
	}
	if !errors.Is(sum, errB) {
		t.Fatal("summary does not wrap the most recent per-endpoint error")
	}
	// Success resets the failure streak but keeps the diagnostic: if the
	// whole set later goes down, the summary can still name what each
	// endpoint last said.
	p.Success("a:1")
	if msg := p.ErrorSummary().Error(); !strings.Contains(msg, "a:1") {
		t.Fatalf("summary lost the recovered endpoint's last error: %q", msg)
	}
	if h := p.Snapshot()[0]; h.ConsecutiveFailures != 0 || h.LastErr == nil {
		t.Fatalf("Success should clear the streak, not the diagnostic: %+v", h)
	}
}

// Regression: a rotation that succeeds after a failed round used to
// erase the failed endpoint's recorded error, so a later all-down
// budget-exhaustion report could no longer say why the preferred
// endpoint was skipped (e.g. "standby awaiting promotion").
func TestSuccessKeepsLastErrorForLaterSummary(t *testing.T) {
	p := New([]string{"primary:1", "standby:2"}, 0, 0)
	p.Fail("primary:1", errors.New("session deferred: standby awaiting promotion"))
	p.Success("standby:2")
	// Both endpoints die later; the summary must still explain primary:1.
	p.Fail("standby:2", errors.New("connection reset"))
	p.Fail("primary:1", errors.New("connection refused"))
	msg := p.ErrorSummary().Error()
	if !strings.Contains(msg, "primary:1") || !strings.Contains(msg, "connection refused") {
		t.Fatalf("summary missing primary:1's error: %q", msg)
	}
	if !strings.Contains(msg, "standby:2") || !strings.Contains(msg, "connection reset") {
		t.Fatalf("summary missing standby:2's error: %q", msg)
	}

	// And the intermediate state — one endpoint failed, the other fine —
	// keeps the diagnostic visible in health snapshots.
	q := New([]string{"a:1", "b:2"}, 0, 0)
	q.Fail("a:1", errors.New("no route to host"))
	q.Success("b:2")
	snap := q.Snapshot()
	if snap[0].LastErr == nil || !strings.Contains(snap[0].LastErr.Error(), "no route") {
		t.Fatalf("Success on a peer erased a:1's diagnostic: %+v", snap[0])
	}
}

func TestSetLoadAndLeastLoaded(t *testing.T) {
	p := New([]string{"s0", "s1", "s2"}, 0, 0)
	if _, ok := p.LeastLoaded(); ok {
		t.Fatal("LeastLoaded reported an endpoint before any sample")
	}
	p.SetLoad("s1", 40)
	p.SetLoad("s2", 10)
	if addr, ok := p.LeastLoaded(); !ok || addr != "s2" {
		t.Fatalf("LeastLoaded = %q, %v; want s2", addr, ok)
	}
	// An unhealthy endpoint is excluded even if least loaded.
	p.Fail("s2", errors.New("refused"))
	if addr, ok := p.LeastLoaded(); !ok || addr != "s1" {
		t.Fatalf("LeastLoaded with s2 down = %q, %v; want s1", addr, ok)
	}
	// Ties keep priority order.
	p.Success("s2")
	p.SetLoad("s0", 10)
	p.SetLoad("s2", 10)
	p.SetLoad("s1", 10)
	if addr, ok := p.LeastLoaded(); !ok || addr != "s0" {
		t.Fatalf("tied LeastLoaded = %q, %v; want priority order s0", addr, ok)
	}
	h := p.Snapshot()[0]
	if !h.LoadKnown || h.Load != 10 {
		t.Fatalf("snapshot missing load sample: %+v", h)
	}
	// Unknown address: a no-op, not a panic.
	p.SetLoad("nope", 1)
}

func TestSuccessMakesEndpointCurrent(t *testing.T) {
	p := New([]string{"a", "b", "c"}, 0, 0)
	p.Success("c")
	if got := p.Pick(); got != "c" {
		t.Fatalf("Success(c) did not make c current: Pick = %q", got)
	}
}

func TestHealthyAlternative(t *testing.T) {
	p := New([]string{"a", "b"}, 0, 0)
	if !p.HealthyAlternative("a") {
		t.Fatal("fresh peer b should count as a healthy alternative to a")
	}
	p.Fail("b", errors.New("refused"))
	if p.HealthyAlternative("a") {
		t.Fatal("b is mid-streak; a has no healthy alternative")
	}
	if !p.HealthyAlternative("b") {
		t.Fatal("a never failed; b should see it as a healthy alternative")
	}
	p.Success("b")
	if !p.HealthyAlternative("a") {
		t.Fatal("Success(b) should restore b as a healthy alternative")
	}
	solo := New([]string{"only"}, 0, 0)
	if solo.HealthyAlternative("only") {
		t.Fatal("a single-endpoint pool has no alternative")
	}
}
