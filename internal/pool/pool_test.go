package pool

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestParseAddrs(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"a:1", []string{"a:1"}},
		{"a:1,b:2", []string{"a:1", "b:2"}},
		{" a:1 , b:2 ,", []string{"a:1", "b:2"}},
		{",,", nil},
		{"", nil},
	}
	for _, c := range cases {
		got := ParseAddrs(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("ParseAddrs(%q) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("ParseAddrs(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestFailoverRotationAndDelays(t *testing.T) {
	p := New([]string{"a", "b"}, 10*time.Millisecond, 80*time.Millisecond)
	if got := p.Pick(); got != "a" {
		t.Fatalf("initial Pick = %q, want a", got)
	}
	// First failure on the current endpoint fails over to the healthy
	// peer with no delay at all.
	if d := p.Fail("a", errors.New("down")); d != 0 {
		t.Fatalf("failover onto a healthy peer delayed %v, want 0", d)
	}
	if got := p.Pick(); got != "b" {
		t.Fatalf("after a fails, Pick = %q, want b", got)
	}
	if p.Failovers() != 1 {
		t.Fatalf("failovers = %d, want 1", p.Failovers())
	}
	// b failing too wraps back onto mid-streak a: the whole set is down,
	// so the shared round backoff kicks in.
	if d := p.Fail("b", errors.New("down too")); d <= 0 {
		t.Fatalf("full-round failure delayed %v, want > 0", d)
	}
	if got := p.Pick(); got != "a" {
		t.Fatalf("after b fails, Pick = %q, want a", got)
	}
	// Delays grow while the whole set stays down.
	d1 := p.Fail("a", errors.New("still down"))
	var d2 time.Duration
	for i := 0; i < 6; i++ {
		d2 = p.Fail([]string{"a", "b"}[p.curIndex()], errors.New("still down"))
	}
	if d2 < d1/2 {
		t.Fatalf("round backoff not growing: first %v, later %v", d1, d2)
	}
	// Success resets b's streak and the round schedule — but not a's
	// streak: a never recovered, so failing over back onto it draws a
	// fresh base-window delay rather than an immediate retry.
	p.Success("b")
	if got := p.Pick(); got != "b" {
		t.Fatalf("after Success(b), Pick = %q, want b", got)
	}
	if d := p.Fail("b", errors.New("down again")); d < 5*time.Millisecond || d >= 15*time.Millisecond {
		t.Fatalf("failover onto mid-streak a delayed %v, want a base-window delay", d)
	}
}

// curIndex is a test-only peek at the rotation position.
func (p *Pool) curIndex() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cur
}

func TestSingleEndpointDegradesToClassicBackoff(t *testing.T) {
	p := New([]string{"solo"}, 10*time.Millisecond, 80*time.Millisecond)
	d := p.Fail("solo", errors.New("down"))
	if d < 5*time.Millisecond || d >= 15*time.Millisecond {
		t.Fatalf("first single-endpoint delay %v outside the base window", d)
	}
	if p.Failovers() != 0 {
		t.Fatalf("single endpoint recorded a failover")
	}
	var last time.Duration
	for i := 0; i < 8; i++ {
		last = p.Fail("solo", errors.New("down"))
	}
	if last < 40*time.Millisecond { // capped window is [40ms, 120ms)
		t.Fatalf("single-endpoint backoff failed to reach the cap window: %v", last)
	}
}

func TestDemoteRotatesWithoutCharging(t *testing.T) {
	p := New([]string{"a", "b"}, 0, 0)
	p.Demote("a")
	if got := p.Pick(); got != "b" {
		t.Fatalf("after Demote(a), Pick = %q, want b", got)
	}
	if p.Failovers() != 1 {
		t.Fatalf("demote failover not counted: %d", p.Failovers())
	}
	for _, h := range p.Snapshot() {
		if h.ConsecutiveFailures != 0 || h.LastErr != nil {
			t.Fatalf("demote charged endpoint %s: %+v", h.Addr, h)
		}
	}
	// Demoting an endpoint that is not current is a no-op.
	p.Demote("a")
	if got := p.Pick(); got != "b" {
		t.Fatalf("demote of non-current endpoint moved the pool to %q", got)
	}
	if p.Failovers() != 1 {
		t.Fatalf("no-op demote counted a failover")
	}
}

func TestErrorSummaryNamesEveryEndpoint(t *testing.T) {
	p := New([]string{"a:1", "b:2", "c:3"}, 0, 0)
	if p.ErrorSummary() != nil {
		t.Fatal("fresh pool reported an error summary")
	}
	errB := errors.New("connection refused")
	p.Fail("a:1", errors.New("no route to host"))
	p.Fail("b:2", errB)
	sum := p.ErrorSummary()
	if sum == nil {
		t.Fatal("no summary after failures")
	}
	msg := sum.Error()
	if !strings.Contains(msg, "a:1") || !strings.Contains(msg, "no route to host") {
		t.Fatalf("summary missing a:1's error: %q", msg)
	}
	if !strings.Contains(msg, "b:2") || !strings.Contains(msg, "connection refused") {
		t.Fatalf("summary missing b:2's error: %q", msg)
	}
	if strings.Contains(msg, "c:3") {
		t.Fatalf("summary mentions the endpoint that never failed: %q", msg)
	}
	if !errors.Is(sum, errB) {
		t.Fatal("summary does not wrap the most recent per-endpoint error")
	}
	// Success clears the record.
	p.Success("a:1")
	if msg := p.ErrorSummary().Error(); strings.Contains(msg, "a:1") {
		t.Fatalf("summary still blames a recovered endpoint: %q", msg)
	}
}

func TestSuccessMakesEndpointCurrent(t *testing.T) {
	p := New([]string{"a", "b", "c"}, 0, 0)
	p.Success("c")
	if got := p.Pick(); got != "c" {
		t.Fatalf("Success(c) did not make c current: Pick = %q", got)
	}
}

func TestHealthyAlternative(t *testing.T) {
	p := New([]string{"a", "b"}, 0, 0)
	if !p.HealthyAlternative("a") {
		t.Fatal("fresh peer b should count as a healthy alternative to a")
	}
	p.Fail("b", errors.New("refused"))
	if p.HealthyAlternative("a") {
		t.Fatal("b is mid-streak; a has no healthy alternative")
	}
	if !p.HealthyAlternative("b") {
		t.Fatal("a never failed; b should see it as a healthy alternative")
	}
	p.Success("b")
	if !p.HealthyAlternative("a") {
		t.Fatal("Success(b) should restore b as a healthy alternative")
	}
	solo := New([]string{"only"}, 0, 0)
	if solo.HealthyAlternative("only") {
		t.Fatal("a single-endpoint pool has no alternative")
	}
}
