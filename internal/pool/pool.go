// Package pool tracks a set of collector endpoints and decides, after
// each connection outcome, which endpoint a client should try next and
// how long it should wait first. It is the client half of the sharded
// collector tier: the reporter and monitor reconnect loops feed every
// dial/handshake result into a Pool and follow its verdicts, so
// failover policy — rotate to a healthy peer immediately, back off only
// once the whole set has failed a round, never mask a terminal
// rejection — lives in one place instead of being re-derived per
// client.
//
// The pool is deliberately transport-ignorant: it never dials. Clients
// own their sockets and sessions; the pool owns health bookkeeping
// (consecutive failures, last error per endpoint) and the shared
// backoff schedule (internal/backoff) that paces full failed rounds.
package pool

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"ocep/internal/backoff"
)

// Health is a read-only snapshot of one endpoint's bookkeeping.
type Health struct {
	Addr                string
	ConsecutiveFailures int
	// LastErr is the endpoint's most recent recorded error. It survives
	// an intervening success: the streak reset clears the failure count,
	// not the diagnostic, so a later all-down ErrorSummary can still name
	// what each endpoint last said (e.g. "standby awaiting promotion").
	LastErr error
	// Load is the most recent load sample recorded by SetLoad;
	// meaningful only when LoadKnown is true.
	Load      int64
	LoadKnown bool
}

type endpoint struct {
	addr   string
	fails  int
	lastMu sync.Mutex // lastErr is read by ErrorSummary while Fail writes it
	last   error
	// load is the most recent SetLoad sample; loadKnown gates endpoints
	// that have never been sampled out of LeastLoaded. Guarded by the
	// pool's mu.
	load      int64
	loadKnown bool
}

// Pool is a rotation of endpoints with per-endpoint health. All methods
// are safe for concurrent use, though the reconnect loops that drive it
// are single-goroutine per client.
type Pool struct {
	mu        sync.Mutex
	eps       []*endpoint
	cur       int
	failovers uint64
	shared    *backoff.Backoff
}

// New builds a pool over addrs in the given priority order, pacing full
// failed rounds with an exponential backoff from base to max (zero
// values fall back to the backoff package defaults). It panics on an
// empty address list: a client with nowhere to dial is a construction
// bug, not a runtime condition.
func New(addrs []string, base, max time.Duration) *Pool {
	if len(addrs) == 0 {
		panic("pool.New: no endpoints")
	}
	p := &Pool{shared: backoff.New(base, max)}
	for _, a := range addrs {
		p.eps = append(p.eps, &endpoint{addr: a})
	}
	return p
}

// ParseAddrs splits a comma-separated endpoint list, trimming
// whitespace and dropping empty items, so "-connect host1:9077,
// host2:9077" round-trips through flag parsing.
func ParseAddrs(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// Pick returns the endpoint the client should try now.
func (p *Pool) Pick() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.eps[p.cur].addr
}

// Success records a working session on addr: its failure streak and the
// shared round backoff reset, and it becomes (stays) current. The last
// recorded error is deliberately kept: a success that interleaves with
// a failed round must not erase the diagnostic before a later all-down
// ErrorSummary can name it (only a fresh failure overwrites it).
func (p *Pool) Success(addr string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, ep := range p.eps {
		if ep.addr == addr {
			ep.fails = 0
			p.cur = i
			break
		}
	}
	p.shared.Reset()
}

// Fail records a failed attempt against addr and returns how long the
// client should wait before its next attempt. If addr was current the
// pool advances to the next endpoint; a failover to a peer that has not
// failed since its last success is immediate (zero delay), while
// landing on an endpoint that is itself mid-streak means the whole set
// is down and the shared round backoff paces the retry. With a single
// endpoint this degrades to the classic jittered reconnect schedule.
func (p *Pool) Fail(addr string, err error) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, ep := range p.eps {
		if ep.addr == addr {
			ep.fails++
			ep.setErr(err)
			if i == p.cur {
				p.advanceLocked()
			}
			break
		}
	}
	if p.eps[p.cur].fails == 0 {
		return 0
	}
	return p.shared.Next()
}

// HealthyAlternative reports whether some endpoint other than addr has
// no failure streak — a peer currently believed able to take a session.
// Drain handling consults it: a drain notice is worth abandoning a live
// session for only if there is somewhere credible to go; with every
// alternative mid-streak the client is better off holding the draining
// session until the server's final End frame.
func (p *Pool) HealthyAlternative(addr string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, ep := range p.eps {
		if ep.addr != addr && ep.fails == 0 {
			return true
		}
	}
	return false
}

// Demote rotates away from addr without charging it a failure: the
// endpoint announced an orderly drain, so it is healthy but should not
// receive new sessions. Counts as a failover when the pool actually
// moves.
func (p *Pool) Demote(addr string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.eps[p.cur].addr == addr {
		p.advanceLocked()
	}
}

func (p *Pool) advanceLocked() {
	if len(p.eps) == 1 {
		return
	}
	p.cur = (p.cur + 1) % len(p.eps)
	p.failovers++
}

// SetLoad records addr's most recent load sample — in the sharded tier,
// a shard's pending-events gauge plus a shedding penalty, scraped from
// its metrics endpoint. Samples feed LeastLoaded; endpoints never
// sampled do not participate.
func (p *Pool) SetLoad(addr string, load int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, ep := range p.eps {
		if ep.addr == addr {
			ep.load = load
			ep.loadKnown = true
			return
		}
	}
}

// LeastLoaded returns the healthy endpoint (no current failure streak)
// with the lowest recorded load sample, keeping priority order on ties.
// ok is false when no healthy endpoint has been sampled — callers fall
// back to their deterministic placement (the shard partitioner's hash).
func (p *Pool) LeastLoaded() (addr string, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var best *endpoint
	for _, ep := range p.eps {
		if ep.fails > 0 || !ep.loadKnown {
			continue
		}
		if best == nil || ep.load < best.load {
			best = ep
		}
	}
	if best == nil {
		return "", false
	}
	return best.addr, true
}

// Failovers counts how many times the pool moved off its current
// endpoint, whether for failure or drain.
func (p *Pool) Failovers() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.failovers
}

// Size returns the number of endpoints.
func (p *Pool) Size() int { return len(p.eps) }

// Snapshot returns the health of every endpoint in priority order.
func (p *Pool) Snapshot() []Health {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Health, len(p.eps))
	for i, ep := range p.eps {
		out[i] = Health{
			Addr:                ep.addr,
			ConsecutiveFailures: ep.fails,
			LastErr:             ep.getErr(),
			Load:                ep.load,
			LoadKnown:           ep.loadKnown,
		}
	}
	return out
}

// ErrorSummary condenses the per-endpoint last errors into one error
// for budget-exhaustion reports, so "every endpoint is down" names each
// endpoint and what it last said instead of only the final dial error.
// Returns nil if no endpoint has a recorded error.
func (p *Pool) ErrorSummary() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var prefix []string
	var lastAddr string
	var last error
	for _, ep := range p.eps {
		if err := ep.getErr(); err != nil {
			if last != nil {
				prefix = append(prefix, fmt.Sprintf("%s: %v", lastAddr, last))
			}
			lastAddr, last = ep.addr, err
		}
	}
	if last == nil {
		return nil
	}
	if len(prefix) == 0 {
		return fmt.Errorf("%s: %w", lastAddr, last)
	}
	return fmt.Errorf("%s; %s: %w", strings.Join(prefix, "; "), lastAddr, last)
}

func (e *endpoint) setErr(err error) {
	e.lastMu.Lock()
	e.last = err
	e.lastMu.Unlock()
}

func (e *endpoint) getErr() error {
	e.lastMu.Lock()
	defer e.lastMu.Unlock()
	return e.last
}

// ErrNoEndpoints is returned by helpers that validate address lists
// before constructing a pool.
var ErrNoEndpoints = errors.New("no endpoints configured")
