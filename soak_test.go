package ocep_test

import (
	"sync"
	"testing"
	"time"

	"ocep"
	"ocep/internal/workload"
)

// TestMultiMonitorSoak runs all four case-study workloads concurrently
// into one instrumented collector with four instrumented monitors
// attached — the deployment shape of one POET server watching a whole
// application suite. Exercises the collector's locking, replay
// subscriptions, the shared store, and the telemetry hot path under
// the race detector; per-monitor progress is asserted through labeled
// counters rather than polled stats.
func TestMultiMonitorSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping soak test")
	}
	reg := ocep.NewRegistry()
	collector := ocep.NewCollector()
	collector.InstrumentMetrics(reg)

	monitors := map[string]*ocep.Monitor{}
	for name, src := range map[string]string{
		"deadlock":  workload.DeadlockPattern(2),
		"race":      workload.MsgRacePattern(),
		"atomicity": workload.AtomicityPattern(),
		"ordering":  workload.OrderingPattern(),
	} {
		mon, err := ocep.NewMonitor(src, ocep.WithMetrics(reg, ocep.L("pattern", name)))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mon.Attach(collector)
		monitors[name] = mon
	}

	// The workloads use disjoint trace-name spaces, so one collector
	// can host all of them at once. Run them concurrently.
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	type gen func() error
	gens := []gen{
		func() error {
			_, err := workload.GenDeadlock(workload.DeadlockConfig{
				Ranks: 6, CycleLen: 2, Rounds: 300, BugProb: 0.05, Seed: 1, Sink: collector,
				TracePrefix: "walker",
			})
			return err
		},
		func() error {
			_, err := workload.GenMsgRace(workload.MsgRaceConfig{
				Ranks: 5, Waves: 60, Sink: collector,
				TracePrefix: "worker",
			})
			return err
		},
		func() error {
			_, err := workload.GenAtomicity(workload.AtomicityConfig{
				Threads: 4, Iterations: 150, BugProb: 0.05, Seed: 2, Sink: collector,
			})
			return err
		},
		func() error {
			_, err := workload.GenReplication(workload.ReplicationConfig{
				Followers: 8, UpdatesPerSession: 10, BugProb: 0.3, Seed: 3, Sink: collector,
			})
			return err
		},
	}
	for _, g := range gens {
		wg.Add(1)
		go func(g gen) {
			defer wg.Done()
			errs <- g()
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if !collector.Drained() {
		t.Fatalf("collector left %d undelivered events", collector.Pending())
	}

	delivered := int64(collector.Delivered())
	if got := reg.Value("poet_delivered_events_total"); got != delivered {
		t.Fatalf("delivered counter %d != collector.Delivered() %d", got, delivered)
	}
	for name, mon := range monitors {
		if err := mon.Err(); err != nil {
			t.Fatalf("%s monitor: %v", name, err)
		}
		// Counter-wait instead of polling Stats: synchronous attachments
		// are already drained, so this must succeed immediately, and each
		// labeled series must agree with the matcher's own count.
		c := reg.FindCounter("ocep_monitor_events_total", ocep.L("pattern", name))
		if !c.WaitAtLeast(delivered, 10*time.Second) {
			t.Fatalf("%s monitor saw %d of %d events", name, c.Value(), delivered)
		}
		s := mon.Stats()
		if int64(s.EventsSeen) != c.Value() {
			t.Fatalf("%s monitor counter %d != EventsSeen %d", name, c.Value(), s.EventsSeen)
		}
		if s.CompleteMatches == 0 {
			t.Errorf("%s monitor found nothing despite seeded violations", name)
		}
	}
}

// Note: the race pattern matches mpi_send/mpi_recv types that the
// deadlock workload also emits (both use the mpi runtime), so the race
// monitor legitimately matches concurrent same-destination sends from
// either workload; the soak assertions only require that every monitor
// keeps up with the full stream and finds its seeded violations.
