package ocep_test

import (
	"sync"
	"testing"

	"ocep"
	"ocep/internal/workload"
)

// TestMultiMonitorSoak runs all four case-study workloads concurrently
// into one collector with four monitors attached — the deployment shape
// of one POET server watching a whole application suite. Exercises the
// collector's locking, replay subscriptions and the shared store under
// the race detector.
func TestMultiMonitorSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping soak test")
	}
	collector := ocep.NewCollector()

	monitors := map[string]*ocep.Monitor{}
	for name, src := range map[string]string{
		"deadlock":  workload.DeadlockPattern(2),
		"race":      workload.MsgRacePattern(),
		"atomicity": workload.AtomicityPattern(),
		"ordering":  workload.OrderingPattern(),
	} {
		mon, err := ocep.NewMonitor(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mon.Attach(collector)
		monitors[name] = mon
	}

	// The workloads use disjoint trace-name spaces, so one collector
	// can host all of them at once. Run them concurrently.
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	type gen func() error
	gens := []gen{
		func() error {
			_, err := workload.GenDeadlock(workload.DeadlockConfig{
				Ranks: 6, CycleLen: 2, Rounds: 300, BugProb: 0.05, Seed: 1, Sink: collector,
				TracePrefix: "walker",
			})
			return err
		},
		func() error {
			_, err := workload.GenMsgRace(workload.MsgRaceConfig{
				Ranks: 5, Waves: 60, Sink: collector,
				TracePrefix: "worker",
			})
			return err
		},
		func() error {
			_, err := workload.GenAtomicity(workload.AtomicityConfig{
				Threads: 4, Iterations: 150, BugProb: 0.05, Seed: 2, Sink: collector,
			})
			return err
		},
		func() error {
			_, err := workload.GenReplication(workload.ReplicationConfig{
				Followers: 8, UpdatesPerSession: 10, BugProb: 0.3, Seed: 3, Sink: collector,
			})
			return err
		},
	}
	for _, g := range gens {
		wg.Add(1)
		go func(g gen) {
			defer wg.Done()
			errs <- g()
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if !collector.Drained() {
		t.Fatalf("collector left %d undelivered events", collector.Pending())
	}

	for name, mon := range monitors {
		if err := mon.Err(); err != nil {
			t.Fatalf("%s monitor: %v", name, err)
		}
		s := mon.Stats()
		if s.EventsSeen != collector.Delivered() {
			t.Fatalf("%s monitor saw %d of %d events", name, s.EventsSeen, collector.Delivered())
		}
		if s.CompleteMatches == 0 {
			t.Errorf("%s monitor found nothing despite seeded violations", name)
		}
	}
}

// Note: the race pattern matches mpi_send/mpi_recv types that the
// deadlock workload also emits (both use the mpi runtime), so the race
// monitor legitimately matches concurrent same-destination sends from
// either workload; the soak assertions only require that every monitor
// keeps up with the full stream and finds its seeded violations.
