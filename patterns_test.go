package ocep_test

import (
	"os"
	"path/filepath"
	"testing"

	"ocep"
)

// TestShippedPatternsCompile keeps every pattern file under
// examples/patterns parseable and compilable.
func TestShippedPatternsCompile(t *testing.T) {
	files, err := filepath.Glob("examples/patterns/*.pat")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatalf("no shipped pattern files found")
	}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			desc, err := ocep.CheckPattern(string(src))
			if err != nil {
				t.Fatalf("does not compile: %v", err)
			}
			if desc == "" {
				t.Fatalf("empty description")
			}
		})
	}
}
