package ocep_test

// Sharded-tier differential: each case study runs against a tier of
// real poetd shard processes — every shard striping its own trace-ID
// space, exchanging cross-shard send records with its peers, and
// serving its slice of the stream — while a merged monitor client
// weaves the per-shard streams back into one causally consistent
// linearization. The run must report exactly the match set, coverage,
// and semantic matcher statistics of a fault-free single-collector run
// over the same captured event sequence. A second scenario SIGKILLs one
// shard's primary mid-stream with a warm standby attached: the shard's
// clients and every peer follower fail over, the promoted standby
// re-streams its export log from zero, and the output must still be
// identical — a shard crash is invisible in the tier's answer.

import (
	"os/exec"
	"strconv"
	"sync"
	"syscall"
	"testing"
	"time"

	"ocep"
	"ocep/internal/proctest"
	"ocep/internal/shard"
)

// startPoetdShard launches one shard of a collector tier: a poetd child
// with -shard-id/-peers plus any extra flags (a warm standby adds
// -follow), waiting until it accepts protocol connections.
func startPoetdShard(t *testing.T, bin, addr, metricsAddr string, shardID int, peers string, out *proctest.SyncBuffer, extra ...string) *exec.Cmd {
	t.Helper()
	args := []string{
		"-listen", addr,
		"-metrics-addr", metricsAddr,
		"-shard-id", strconv.Itoa(shardID),
		"-peers", peers,
		"-ack-interval", "5ms",
		"-heartbeat", "25ms",
		"-quiet",
	}
	args = append(args, extra...)
	return proctest.StartServer(t, bin, out, addr, args...)
}

// runShardedTier pushes the captured events through a router over
// per-shard pooled reporters, matches the merged monitor stream, and
// returns the run's signatures and stats. kill, when non-nil, is called
// once halfway through the stream (after a flush) to injure the tier.
func runShardedTier(t *testing.T, tc failoverCase, events []ocep.RawEvent, pools []string, kill func()) (matchSigs, covSigs []string, stats ocep.MatcherStats) {
	t.Helper()
	spec := ""
	for i, p := range pools {
		if i > 0 {
			spec += ";"
		}
		spec += p
	}

	// One pooled reporter per shard; the router assigns each trace a
	// home shard by rendezvous hash and keeps it there.
	reporters := make(map[string]*ocep.Reporter, len(pools))
	tier := make(map[string]shard.TraceReporter[ocep.RawEvent], len(pools))
	for _, p := range pools {
		rep, err := ocep.DialReporter(p,
			ocep.WithReporterBackoff(5*time.Millisecond, 200*time.Millisecond),
			ocep.WithReporterHeartbeat(20*time.Millisecond),
			ocep.WithReporterReconnect(60*time.Second),
			ocep.WithReporterLog(t.Logf))
		if err != nil {
			t.Fatal(err)
		}
		defer rep.Close()
		reporters[p] = rep
		tier[p] = rep
	}
	router, err := shard.NewRouter(tier, func(e ocep.RawEvent) string { return e.Trace })
	if err != nil {
		t.Fatal(err)
	}

	merged, err := shard.DialMergedMonitor(spec, nil,
		ocep.WithMonitorBackoff(5*time.Millisecond, 200*time.Millisecond),
		ocep.WithMonitorReconnect(60*time.Second),
		ocep.WithMonitorLog(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer merged.Close()

	var mu sync.Mutex
	var matches []ocep.Match
	reg := ocep.NewRegistry()
	mon, err := ocep.NewMonitor(tc.pattern,
		ocep.WithReportAll(),
		ocep.WithMetrics(reg),
		ocep.WithMatchHandler(func(m ocep.Match) {
			mu.Lock()
			matches = append(matches, m)
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() { runDone <- mon.Run(merged) }()

	flushAll := func(stage string) {
		for _, rep := range reporters {
			if err := rep.Flush(); err != nil {
				t.Fatalf("flush %s: %v", stage, err)
			}
		}
	}
	for i, e := range events {
		if kill != nil && i == len(events)/2 {
			flushAll("before kill")
			kill()
		}
		if err := router.Report(e); err != nil {
			t.Fatalf("route event %d: %v", i, err)
		}
	}
	flushAll("at end of stream")
	waitCounter(t, "monitor to consume the full merged stream",
		reg.FindCounter("ocep_monitor_events_total"), int64(len(events)))

	// The caller shuts the shards down; Run must return nil on their
	// End frames.
	t.Cleanup(func() {
		select {
		case err := <-runDone:
			if err != nil {
				t.Errorf("monitor run over the sharded tier: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Error("monitor run never ended after the tier shut down")
		}
	})

	name := func(tr ocep.TraceID) string {
		n, _ := merged.TraceName(tr)
		return n
	}
	// The counter wait above guarantees the stream is fully consumed, so
	// the signatures and stats below are final even though Run is still
	// blocked waiting for the shards' End frames.
	mu.Lock()
	defer mu.Unlock()
	return matchSignatures(matches, name), coverageSignatures(mon.Coverage(), name), mon.Stats()
}

func TestShardedTierMatchesSingleCollector(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping process-level sharded differential")
	}
	poetd := proctest.BuildTool(t, "poetd")
	for _, tc := range failoverCases() {
		t.Run(tc.name, func(t *testing.T) {
			sink := &captureSink{}
			if err := tc.generate(sink); err != nil {
				t.Fatal(err)
			}
			events := sink.events
			if len(events) < 100 {
				t.Fatalf("workload too small (%d events) for a meaningful differential", len(events))
			}
			cleanMatches, cleanCov, cleanStats := runCleanBaselineStats(t, tc.pattern, events)
			if len(cleanMatches) == 0 {
				t.Fatal("single-collector run reported no matches; the differential comparison is vacuous")
			}

			addr0, addr1 := proctest.FreePort(t), proctest.FreePort(t)
			m0, m1 := proctest.FreePort(t), proctest.FreePort(t)
			spec := addr0 + ";" + addr1
			out := &proctest.SyncBuffer{}
			s0 := startPoetdShard(t, poetd, addr0, m0, 0, spec, out)
			defer proctest.KillIfAlive(s0)
			s1 := startPoetdShard(t, poetd, addr1, m1, 1, spec, out)
			defer proctest.KillIfAlive(s1)

			gotMatches, gotCov, gotStats := runShardedTier(t, tc, events, []string{addr0, addr1}, nil)

			// SIGINT ends both shards immediately and cleanly: monitor
			// queues are flushed and End frames sent, so the merged Run
			// (checked in a cleanup) returns nil.
			for _, s := range []*exec.Cmd{s0, s1} {
				if err := s.Process.Signal(syscall.SIGINT); err != nil {
					t.Fatal(err)
				}
			}
			for _, s := range []*exec.Cmd{s0, s1} {
				if err := s.Wait(); err != nil {
					t.Fatalf("shard clean shutdown: %v\noutput:\n%s", err, out.String())
				}
			}

			compareDifferential(t, "sharded", cleanMatches, cleanCov, cleanStats, gotMatches, gotCov, gotStats)
		})
	}
}

// TestShardedTierSurvivesShardFailover SIGKILLs shard 1's primary
// mid-stream with a warm standby attached. The shard's pooled clients
// fail over, the peer shard's export follower redials through the same
// pool, the promoted standby re-streams shard 1's export log from
// record zero (absorbed idempotently by shard 0), and the tier's output
// must still be identical to the single-collector run.
func TestShardedTierSurvivesShardFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping process-killing sharded differential")
	}
	poetd := proctest.BuildTool(t, "poetd")
	tc := failoverCases()[0] // msgrace: the densest cross-trace messaging

	sink := &captureSink{}
	if err := tc.generate(sink); err != nil {
		t.Fatal(err)
	}
	events := sink.events
	if len(events) < 100 {
		t.Fatalf("workload too small (%d events) for a meaningful mid-stream kill", len(events))
	}
	cleanMatches, cleanCov, cleanStats := runCleanBaselineStats(t, tc.pattern, events)
	if len(cleanMatches) == 0 {
		t.Fatal("single-collector run reported no matches; the differential comparison is vacuous")
	}

	addr0 := proctest.FreePort(t)
	addr1p, addr1s := proctest.FreePort(t), proctest.FreePort(t)
	m0, m1p, m1s := proctest.FreePort(t), proctest.FreePort(t), proctest.FreePort(t)
	pool1 := addr1p + "," + addr1s
	spec := addr0 + ";" + pool1
	out := &proctest.SyncBuffer{}

	s0 := startPoetdShard(t, poetd, addr0, m0, 0, spec, out)
	defer proctest.KillIfAlive(s0)
	s1p := startPoetdShard(t, poetd, addr1p, m1p, 1, spec, out,
		"-data-dir", t.TempDir(), "-fsync", "always", "-snapshot-every", "64")
	defer proctest.KillIfAlive(s1p)
	s1s := startPoetdShard(t, poetd, addr1s, m1s, 1, spec, out,
		"-follow", addr1p,
		"-follow-reconnect", "2s")
	defer proctest.KillIfAlive(s1s)
	// The standby must be replicating before traffic flows: from then on
	// shard 1 acks nothing its standby has not confirmed.
	proctest.WaitMetric(t, "the standby's replication session",
		m1p, "poet_wire_replica_sessions_total", 1)

	killed := false
	gotMatches, gotCov, gotStats := runShardedTier(t, tc, events, []string{addr0, pool1}, func() {
		if err := s1p.Process.Signal(syscall.SIGKILL); err != nil {
			t.Fatalf("killing shard 1 primary: %v", err)
		}
		_ = s1p.Wait()
		killed = true
	})
	if !killed {
		t.Fatal("the kill hook never ran; the scenario proved nothing")
	}

	// Clean shutdown: shard 0 and the promoted standby.
	for _, s := range []*exec.Cmd{s0, s1s} {
		if err := s.Process.Signal(syscall.SIGINT); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range []*exec.Cmd{s0, s1s} {
		if err := s.Wait(); err != nil {
			t.Fatalf("shard clean shutdown: %v\noutput:\n%s", err, out.String())
		}
	}

	compareDifferential(t, "killed-shard", cleanMatches, cleanCov, cleanStats, gotMatches, gotCov, gotStats)
}

// compareDifferential requires the sharded run's observable output —
// match set, coverage, and semantic matcher accounting — to equal the
// single-collector baseline's. (Search-effort counters like backtracks
// are excluded: deterministic in the stream but not part of the
// observable contract.)
func compareDifferential(t *testing.T, label string, cleanMatches, cleanCov []string, cleanStats ocep.MatcherStats, gotMatches, gotCov []string, gotStats ocep.MatcherStats) {
	t.Helper()
	if !equalStrings(cleanMatches, gotMatches) {
		t.Errorf("match sets differ:\nsingle-collector (%d): %v\n%s (%d): %v",
			len(cleanMatches), cleanMatches, label, len(gotMatches), gotMatches)
	}
	if !equalStrings(cleanCov, gotCov) {
		t.Errorf("coverage differs:\nsingle-collector: %v\n%s: %v", cleanCov, label, gotCov)
	}
	cs, fs := cleanStats, gotStats
	if cs.EventsSeen != fs.EventsSeen || cs.EventsMatched != fs.EventsMatched ||
		cs.Triggers != fs.Triggers || cs.CompleteMatches != fs.CompleteMatches ||
		cs.Reported != fs.Reported || cs.Redundant != fs.Redundant ||
		cs.TriggersAborted != fs.TriggersAborted {
		t.Errorf("matcher stats differ:\nsingle-collector: %+v\n%s: %+v", cs, label, fs)
	}
}
