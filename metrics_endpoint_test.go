package ocep_test

// End-to-end scrape test: a real poetd child started with
// -metrics-addr must serve Prometheus text whose counters satisfy the
// wire-decomposition identity against live traffic, and the same
// registry as JSON under /debug/vars.

import (
	"encoding/json"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"ocep"
	"ocep/internal/proctest"
	"ocep/internal/workload"
)

func TestPoetdMetricsEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping process-spawning test")
	}
	poetd := proctest.BuildTool(t, "poetd")
	addr := proctest.FreePort(t)
	metricsAddr := proctest.FreePort(t)

	out := &proctest.SyncBuffer{}
	cmd := exec.Command(poetd,
		"-listen", addr,
		"-metrics-addr", metricsAddr,
		"-ack-interval", "5ms",
		"-heartbeat", "25ms",
		"-quiet")
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting poetd: %v", err)
	}
	defer func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	}()

	// The metrics endpoint must come up (scrape retries until it does)
	// and expose runtime metrics before any traffic.
	body := proctest.Scrape(t, "http://"+metricsAddr+"/metrics")
	if !strings.Contains(body, "# TYPE go_goroutines gauge") {
		t.Fatalf("initial scrape missing runtime metrics:\n%s", body)
	}

	// Drive a real workload through the wire.
	sink := &captureSink{}
	if _, err := workload.GenMsgRace(workload.MsgRaceConfig{Ranks: 4, Waves: 15, Sink: sink}); err != nil {
		t.Fatal(err)
	}
	rep, err := ocep.DialReporter(addr,
		ocep.WithReporterHeartbeat(20*time.Millisecond),
		ocep.WithReporterReconnect(15*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range sink.events {
		if err := rep.Report(e); err != nil {
			t.Fatalf("report: %v", err)
		}
	}
	if err := rep.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	rep.Close()

	m := proctest.ParsePromText(t, proctest.Scrape(t, "http://"+metricsAddr+"/metrics"))
	n := float64(len(sink.events))
	checks := []struct {
		name string
		want float64
	}{
		{"poet_ingested_events_total", n},
		{"poet_delivered_events_total", n},
		{"poet_rejected_reports_total", 0},
		{"poet_pending_events", 0},
		{"poet_wire_target_conns_total", 1},
	}
	for _, c := range checks {
		got, ok := m[c.name]
		if !ok {
			t.Errorf("scrape missing %s", c.name)
			continue
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.name, got, c.want)
		}
	}
	// Wire decomposition against the live scrape.
	if m["poet_wire_target_events_total"] !=
		m["poet_ingested_events_total"]+m["poet_stale_reports_total"]+m["poet_rejected_reports_total"] {
		t.Errorf("wire frames %v != ingested %v + stale %v + rejected %v",
			m["poet_wire_target_events_total"], m["poet_ingested_events_total"],
			m["poet_stale_reports_total"], m["poet_rejected_reports_total"])
	}
	if m["poet_wire_acks_sent_total"] < 1 {
		t.Error("no acks counted, yet the reporter flushed")
	}

	// /debug/vars serves the same registry as valid JSON.
	var vars map[string]any
	if err := json.Unmarshal([]byte(proctest.Scrape(t, "http://"+metricsAddr+"/debug/vars")), &vars); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v", err)
	}
	if v, ok := vars["poet_ingested_events_total"].(float64); !ok || v != n {
		t.Errorf("/debug/vars poet_ingested_events_total = %v, want %v", vars["poet_ingested_events_total"], n)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("poetd shutdown: %v\noutput:\n%s", err, out.String())
	}
}
