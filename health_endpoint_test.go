package ocep_test

// Live-poetd probe tests: a real poetd child must serve /healthz 200
// from the moment its metrics listener is up (liveness), while /readyz
// flips to 503 during WAL recovery and while the collector is shedding
// load, and back to 200 otherwise.

import (
	"fmt"
	"net/http"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"ocep"
	"ocep/internal/proctest"
)

func TestPoetdReadyzDuringOverload(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping process-spawning test")
	}
	poetd := proctest.BuildTool(t, "poetd")
	addr := proctest.FreePort(t)
	metricsAddr := proctest.FreePort(t)

	out := &proctest.SyncBuffer{}
	cmd := exec.Command(poetd,
		"-listen", addr,
		"-metrics-addr", metricsAddr,
		"-max-pending", "2",
		"-quiet")
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting poetd: %v", err)
	}
	defer func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	}()

	readyz := "http://" + metricsAddr + "/readyz"
	healthz := "http://" + metricsAddr + "/healthz"
	proctest.WaitForStatus(t, readyz, http.StatusOK)

	// A head receive waiting on a send nobody reported, plus enough
	// events behind it to overflow -max-pending: the collector refuses
	// the excess, the server parks the connection, and readiness drops.
	rep, err := ocep.DialReporter(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if err := rep.Report(ocep.RawEvent{Trace: "p0", Seq: 1, Kind: ocep.KindReceive, Type: "r", MsgID: 1}); err != nil {
		t.Fatal(err)
	}
	for seq := 2; seq <= 5; seq++ {
		if err := rep.Report(ocep.RawEvent{Trace: "p0", Seq: seq, Kind: ocep.KindInternal, Type: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	body := proctest.WaitForStatus(t, readyz, http.StatusServiceUnavailable)
	if !strings.Contains(body, "overload") {
		t.Fatalf("/readyz 503 body does not name the overload check: %q", body)
	}
	// Liveness is unaffected by shedding.
	if code, _, err := proctest.ProbeURL(healthz); err != nil || code != http.StatusOK {
		t.Fatalf("/healthz while shedding = %d, %v; want 200", code, err)
	}

	// A second reporter supplies the missing send: the backlog drains,
	// the parked connection resumes, and readiness recovers.
	rep2, err := ocep.DialReporter(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rep2.Close()
	if err := rep2.Report(ocep.RawEvent{Trace: "p1", Seq: 1, Kind: ocep.KindSend, Type: "s", MsgID: 1}); err != nil {
		t.Fatal(err)
	}
	proctest.WaitForStatus(t, readyz, http.StatusOK)
	if err := rep.Flush(); err != nil {
		t.Fatalf("parked reporter failed: %v", err)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("poetd shutdown: %v\noutput:\n%s", err, out.String())
	}
}

func TestPoetdReadyzDuringRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping process-spawning test")
	}
	poetd := proctest.BuildTool(t, "poetd")
	dataDir := t.TempDir()

	// Seed the data directory with a WAL big enough that replaying it
	// takes a visible amount of time: events across 4 traces, no
	// snapshot, flushed but deliberately not closed (Close would write
	// a final snapshot and make recovery near-instant).
	c := ocep.NewCollector()
	d, err := ocep.OpenDurable(c, ocep.DurableOptions{
		Dir: dataDir, Fsync: ocep.SyncNone, SnapshotEvery: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	const perTrace = 50_000
	for seq := 1; seq <= perTrace; seq++ {
		for tr := 0; tr < 4; tr++ {
			if err := c.Report(ocep.RawEvent{
				Trace: fmt.Sprintf("p%d", tr), Seq: seq, Kind: ocep.KindInternal, Type: "e",
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}

	addr := proctest.FreePort(t)
	metricsAddr := proctest.FreePort(t)
	out := &proctest.SyncBuffer{}
	cmd := exec.Command(poetd,
		"-listen", addr,
		"-metrics-addr", metricsAddr,
		"-data-dir", dataDir,
		"-quiet")
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting poetd: %v", err)
	}
	defer func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	}()

	// The health listener comes up before recovery starts, so there is
	// a window where the daemon is alive but not ready. Poll tightly
	// and require that we observe it.
	readyz := "http://" + metricsAddr + "/readyz"
	saw503 := false
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, body, err := proctest.ProbeURL(readyz)
		if err != nil {
			time.Sleep(time.Millisecond)
			continue
		}
		if code == http.StatusServiceUnavailable {
			saw503 = true
			if !strings.Contains(body, "startup") {
				t.Fatalf("/readyz 503 body does not name the startup check: %q", body)
			}
		}
		if code == http.StatusOK {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !saw503 {
		t.Fatal("never observed /readyz 503 during WAL recovery")
	}

	// The whole WAL was replayed once ready. (The traffic counters
	// deliberately exclude the recovered prefix — instruments attach
	// after recovery — so check the recovery gauge, which counts the
	// replayed records: one per event plus one per trace registration.)
	m := proctest.ParsePromText(t, proctest.Scrape(t, "http://"+metricsAddr+"/metrics"))
	if got := m["poet_recovery_wal_records"]; got < 4*perTrace {
		t.Fatalf("recovered daemon replayed %v WAL records, want >= %d", got, 4*perTrace)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("poetd shutdown: %v\noutput:\n%s", err, out.String())
	}
}
