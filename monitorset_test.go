package ocep_test

import (
	"strings"
	"sync"
	"testing"

	"ocep"
)

func TestMonitorSetBasics(t *testing.T) {
	var mu sync.Mutex
	byPattern := map[string]int{}
	set := ocep.NewMonitorSet(func(pattern string, m ocep.Match) {
		mu.Lock()
		byPattern[pattern]++
		mu.Unlock()
	})
	if err := set.Add("stale-read", `
		W := [primary, write, $k];
		R := [replica, read,  $k];
		pattern := W || R;
	`); err != nil {
		t.Fatal(err)
	}
	if err := set.Add("ping", `P := [*, ping, *]; pattern := P;`); err != nil {
		t.Fatal(err)
	}
	if err := set.Add("ping", `P := [*, ping, *]; pattern := P;`); err == nil {
		t.Fatalf("duplicate name must fail")
	}
	if err := set.Add("bad", `garbage`); err == nil {
		t.Fatalf("uncompilable member must fail")
	}
	if got := set.Names(); len(got) != 2 || got[0] != "ping" || got[1] != "stale-read" {
		t.Fatalf("names = %v", got)
	}

	collector := ocep.NewCollector()
	// One event before attaching: replay must deliver it to members.
	if err := collector.Report(ocep.RawEvent{Trace: "primary", Seq: 1, Kind: ocep.KindInternal, Type: "ping"}); err != nil {
		t.Fatal(err)
	}
	set.Attach(collector)
	raws := []ocep.RawEvent{
		{Trace: "primary", Seq: 2, Kind: ocep.KindInternal, Type: "write", Text: "k1"},
		{Trace: "replica", Seq: 1, Kind: ocep.KindInternal, Type: "read", Text: "k1"},
	}
	for _, r := range raws {
		if err := collector.Report(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := set.Err(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if byPattern["ping"] != 1 {
		t.Fatalf("ping matches = %d want 1", byPattern["ping"])
	}
	if byPattern["stale-read"] != 1 {
		t.Fatalf("stale-read matches = %d want 1", byPattern["stale-read"])
	}
	stats := set.Stats()
	if len(stats) != 2 || stats["ping"].Reported != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if _, ok := set.Monitor("ping"); !ok {
		t.Fatalf("member lookup failed")
	}
	if _, ok := set.Monitor("nope"); ok {
		t.Fatalf("unknown member resolved")
	}
}

// TestMonitorSetLateAdd: a member added after Attach is auto-attached
// and replays history.
func TestMonitorSetLateAdd(t *testing.T) {
	set := ocep.NewMonitorSet(nil)
	collector := ocep.NewCollector()
	set.Attach(collector)
	if err := collector.Report(ocep.RawEvent{Trace: "p", Seq: 1, Kind: ocep.KindInternal, Type: "boom"}); err != nil {
		t.Fatal(err)
	}
	if err := set.Add("late", `B := [*, boom, *]; pattern := B;`); err != nil {
		t.Fatal(err)
	}
	if got := set.Stats()["late"].Reported; got != 1 {
		t.Fatalf("late member missed replayed history: reported = %d", got)
	}
}

func TestMonitorSetErrorNames(t *testing.T) {
	set := ocep.NewMonitorSet(nil)
	err := set.Add("broken", `pattern := Zed;`)
	if err == nil || !strings.Contains(err.Error(), "broken") {
		t.Fatalf("error must name the member: %v", err)
	}
}
