package ocep_test

import (
	"fmt"
	"strings"

	"ocep"
)

// ExampleNewMonitor demonstrates the core loop: compile a pattern,
// attach the monitor to a collector, and report instrumented events.
func ExampleNewMonitor() {
	collector := ocep.NewCollector()
	mon, err := ocep.NewMonitor(`
		Req  := [*, request,  $id];
		Resp := [*, response, $id];
		pattern := Req -> Resp;
	`, ocep.WithMatchHandler(func(m ocep.Match) {
		fmt.Printf("request %s answered (%s -> %s)\n",
			m.Bindings["id"], m.Events[0].ID, m.Events[1].ID)
	}))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	mon.Attach(collector)

	_ = collector.Report(ocep.RawEvent{Trace: "client", Seq: 1, Kind: ocep.KindSend, Type: "request", Text: "7", MsgID: 1})
	_ = collector.Report(ocep.RawEvent{Trace: "server", Seq: 1, Kind: ocep.KindReceive, Type: "response", Text: "7", MsgID: 1})
	// Output:
	// request 7 answered (t0#1 -> t1#1)
}

// ExampleMonitor_Stats shows the matcher counters after a run.
func ExampleMonitor_Stats() {
	collector := ocep.NewCollector()
	mon, _ := ocep.NewMonitor(`A := [*, ping, *]; pattern := A;`)
	mon.Attach(collector)
	for i := 1; i <= 3; i++ {
		_ = collector.Report(ocep.RawEvent{Trace: "p", Seq: i, Kind: ocep.KindInternal, Type: "ping"})
	}
	s := mon.Stats()
	fmt.Printf("seen=%d reported=%d\n", s.EventsSeen, s.Reported)
	// Output:
	// seen=3 reported=3
}

// ExampleCheckPattern inspects how a pattern compiles.
func ExampleCheckPattern() {
	desc, err := ocep.CheckPattern(`
		A := [*, acquire, $lock];
		B := [*, acquire, $lock];
		pattern := A || B;
	`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// Print just the compiled pairwise constraint line.
	for _, line := range strings.Split(desc, "\n") {
		if strings.Contains(line, "#0 ||") {
			fmt.Println(strings.TrimSpace(line))
		}
	}
	// Output:
	// A#0 || B#1
}

// ExampleCollector_Report shows causality reconstruction: the collector
// assigns vector timestamps and orders a receive after its send even
// when the receive is reported first.
func ExampleCollector_Report() {
	c := ocep.NewCollector()
	var order []string
	c.Subscribe(func(e *ocep.Event) {
		order = append(order, fmt.Sprintf("%s(%s)", e.Type, e.VC))
	})
	// The receive arrives first and is buffered until its send.
	_ = c.Report(ocep.RawEvent{Trace: "q", Seq: 1, Kind: ocep.KindReceive, Type: "recv", MsgID: 9})
	_ = c.Report(ocep.RawEvent{Trace: "p", Seq: 1, Kind: ocep.KindSend, Type: "send", MsgID: 9})
	for _, s := range order {
		fmt.Println(s)
	}
	// Output:
	// send([0 1])
	// recv([1 1])
}
