// Package ocep is an online causal-event-pattern-matching framework for
// distributed applications, a Go implementation of the system described
// in "Towards an Efficient Online Causal-Event-Pattern-Matching
// Framework" (Pramanik, Taylor, Wong — ICDCS 2013).
//
// Instrumented traces (processes, threads, semaphores) report raw events
// to a POET-style collector, which reconstructs the causal partial order,
// assigns vector timestamps, and streams events to monitors in a
// linearization of that order. A Monitor matches a causal event pattern —
// classes of events composed with happens-before (->), concurrency (||),
// communication link (~), limited precedence (lim->) and entanglement
// (<->) operators, with variable binding — and reports, online and with
// bounded stored state, a representative subset of the matches: for every
// (event class, trace) pair occurring in some complete match, at least
// one reported match contains that pair.
//
// # Quick start
//
//	collector := ocep.NewCollector()
//	mon, err := ocep.NewMonitor(`
//	    A := [*, request, *];
//	    B := [*, response, *];
//	    pattern := A -> B;
//	`, ocep.WithMatchHandler(func(m ocep.Match) {
//	    fmt.Println("matched:", m.Events)
//	}))
//	// handle err
//	mon.Attach(collector)
//	// ... report events to the collector from instrumented code ...
//
// The cmd/ directory provides a standalone collector daemon (poetd), an
// online monitor (ocepmon), a pattern checker (patternc), and the full
// evaluation harness reproducing the paper's figures (ocepbench).
package ocep

import (
	"fmt"
	"io"
	"sync"
	"time"

	"ocep/internal/core"
	"ocep/internal/event"
	"ocep/internal/pattern"
	"ocep/internal/poet"
	"ocep/internal/telemetry"
	"ocep/internal/vclock"
)

// Re-exported event model types. They alias the internal implementation
// so values flow between the public API and the toolkit packages.
type (
	// Event is a primitive event: a stamped state transition on a trace.
	Event = event.Event
	// EventID identifies an event by trace and position.
	EventID = event.ID
	// TraceID numbers a trace.
	TraceID = event.TraceID
	// Kind classifies an event's communication role.
	Kind = event.Kind
	// Clock is the vector-timestamp contract shared by the dense and
	// sparse representations; Event.VC holds one.
	Clock = vclock.Clock
	// VC is the dense Fidge/Mattern vector timestamp — the differential
	// oracle representation.
	VC = vclock.VC
	// SparseClock is the sparse (trace, count)-pair timestamp: O(causal
	// past) memory instead of O(#traces); see Collector.SetSparseClocks.
	SparseClock = vclock.Sparse
	// RawEvent is an unstamped instrumented event as reported by targets.
	RawEvent = poet.RawEvent
	// Collector ingests raw events and delivers stamped events in a
	// linearization of the causal partial order.
	Collector = poet.Collector
	// Server exposes a Collector over TCP.
	Server = poet.Server
	// Match is one reported pattern match.
	Match = core.Match
	// MatcherStats are cumulative matcher counters.
	MatcherStats = core.Stats
	// DispatchStats are a MonitorSet's shared class-index dispatcher
	// counters; see MonitorSet.DispatchStats.
	DispatchStats = core.DispatchStats
	// BackpressurePolicy selects what a full asynchronous delivery queue
	// does: block ingestion or drop for that monitor.
	BackpressurePolicy = poet.BackpressurePolicy
	// DeliveryStats are one async monitor's delivery-queue counters.
	DeliveryStats = poet.DeliveryStats
	// Reporter streams raw events to a POET server with acknowledged,
	// exactly-once ingestion and automatic reconnection.
	Reporter = poet.Reporter
	// MonitorClient receives the linearized stream from a POET server,
	// resuming its session across connection failures.
	MonitorClient = poet.MonitorClient
	// EventSource is any linearized stream Monitor.Run can drain: a
	// MonitorClient, or a sharded tier's MergedClient.
	EventSource = poet.EventSource
	// ReporterOption configures DialReporter.
	ReporterOption = poet.ReporterOption
	// MonitorOption configures DialMonitor.
	MonitorOption = poet.MonitorOption
	// ReporterStats are a reporter's cumulative wire counters.
	ReporterStats = poet.ReporterStats
	// MonitorClientStats are a monitor client's cumulative wire counters.
	MonitorClientStats = poet.MonitorClientStats
	// WireStats are a server's cumulative fault-tolerance counters.
	WireStats = poet.WireStats
	// Durability write-ahead-logs a collector's ingestion and manages
	// its snapshots; see OpenDurable.
	Durability = poet.Durability
	// DurableOptions configures OpenDurable.
	DurableOptions = poet.DurableOptions
	// RecoveryStats describes what startup recovery found and rebuilt.
	RecoveryStats = poet.RecoveryStats
	// SyncPolicy selects when the write-ahead log is fsynced.
	SyncPolicy = poet.SyncPolicy
	// RetentionStats summarize the effect of Collector.SetRetention.
	RetentionStats = poet.RetentionStats
)

// Re-exported telemetry types. A Registry collects named metrics from
// every layer of the pipeline and renders them as Prometheus text
// (Registry.WritePrometheus) or expvar-style JSON (Registry.WriteJSON).
// Wire one registry through the components of a deployment:
//
//	reg := ocep.NewRegistry()
//	collector.InstrumentMetrics(reg)   // ingest, WAL, delivery queues
//	server.InstrumentMetrics(reg)      // wire protocol counters
//	mon, _ := ocep.NewMonitor(src, ocep.WithMetrics(reg), ...)
//
// Instrument at wiring time, before traffic flows: delivery queues
// snapshot their instruments when a monitor attaches.
type (
	// Registry holds named metrics and renders them. A nil *Registry is
	// the disabled mode: constructors return nil instruments whose
	// methods no-op, so instrumented code costs only nil checks.
	Registry = telemetry.Registry
	// MetricCounter is a monotonically increasing counter. Its
	// WaitAtLeast method lets tests block on pipeline progress instead
	// of sleep-polling.
	MetricCounter = telemetry.Counter
	// MetricGauge is a value that can go up and down.
	MetricGauge = telemetry.Gauge
	// MetricHistogram is a bounded log-linear histogram of int64
	// observations (≤25% relative bucket error, lock-free writes).
	MetricHistogram = telemetry.Histogram
	// MetricLabel is one key=value pair distinguishing series within a
	// metric family.
	MetricLabel = telemetry.Label
	// Health aggregates named readiness checks into /healthz + /readyz
	// probe handlers (poetd mounts one on its metrics listener).
	Health = telemetry.Health
)

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return telemetry.NewRegistry() }

// NewHealth returns an empty health-probe aggregator.
func NewHealth() *Health { return telemetry.NewHealth() }

// ErrStreamInterrupted is wrapped by MonitorClient.Next when the event
// stream dies mid-flight and cannot be resumed; a clean end of stream
// is always io.EOF instead.
var ErrStreamInterrupted = poet.ErrStreamInterrupted

// ErrSessionRejected is wrapped by client errors when the server refuses
// a session outright (e.g. a resume offset beyond the server's stream,
// after a crash recovery lost a suffix); the client reconnect loops
// treat it as terminal rather than retrying a permanent refusal.
var ErrSessionRejected = poet.ErrSessionRejected

// ErrOverloaded is wrapped by Collector.Report when admission control
// (Collector.SetAdmissionLimit) refuses an event; the TCP server sheds
// the load back onto the reporter's buffer instead of surfacing it.
var ErrOverloaded = poet.ErrOverloaded

// WAL fsync policies for DurableOptions.Fsync.
const (
	// SyncAlways fsyncs before an append commits: an acknowledged event
	// is never lost to a crash.
	SyncAlways = poet.SyncAlways
	// SyncInterval fsyncs on a timer: bounded loss, near-zero overhead.
	SyncInterval = poet.SyncInterval
	// SyncNone leaves durability to the OS page cache.
	SyncNone = poet.SyncNone
)

// OpenDurable opens (or creates) a data directory, recovers its snapshot
// and write-ahead log into c, and attaches write-ahead logging to c's
// ingestion, making the collector crash-durable. Close the returned
// Durability on shutdown for a final snapshot.
func OpenDurable(c *Collector, opts DurableOptions) (*Durability, error) {
	return poet.OpenDurable(c, opts)
}

// ReloadDir replays a durability data directory (snapshot plus
// write-ahead log) into a collector without attaching durability.
func ReloadDir(c *Collector, dir string) (RecoveryStats, error) {
	return poet.ReloadDir(c, dir)
}

// ParseSyncPolicy parses "always", "interval", or "none".
func ParseSyncPolicy(s string) (SyncPolicy, error) { return poet.ParseSyncPolicy(s) }

// Backpressure policies for WithBackpressure.
const (
	// BackpressureBlock throttles Report to the slowest monitor; no
	// event is lost.
	BackpressureBlock = poet.BackpressureBlock
	// BackpressureDrop discards events for a monitor whose queue is
	// full, counting them in DeliveryStats.Dropped.
	BackpressureDrop = poet.BackpressureDrop
)

// Event kinds.
const (
	KindInternal    = event.KindInternal
	KindSend        = event.KindSend
	KindReceive     = event.KindReceive
	KindSyncAcquire = event.KindSyncAcquire
	KindSyncRelease = event.KindSyncRelease
)

// NewCollector returns an empty collector.
func NewCollector() *Collector { return poet.NewCollector() }

// NewServer wraps a collector for TCP serving; see Server.Listen.
func NewServer(c *Collector, logf func(string, ...any)) *Server {
	return poet.NewServer(c, logf)
}

// DialReporter connects to a POET server as an instrumented target.
// Reports are buffered locally until the server acknowledges ingestion;
// a dead connection is redialed with exponential backoff and the
// unacknowledged suffix retransmitted, which the server absorbs
// idempotently — exactly-once ingestion across failures. See
// WithReporterReconnect, WithReporterBuffer, WithReporterHeartbeat.
func DialReporter(addr string, opts ...ReporterOption) (*Reporter, error) {
	return poet.DialReporter(addr, opts...)
}

// DialMonitor connects to a POET server as a monitor client. When the
// connection dies mid-stream the client reconnects with backoff and
// resumes from the exact event index it had reached, keeping the
// observed stream gap- and duplicate-free; see WithMonitorReconnect.
func DialMonitor(addr string, opts ...MonitorOption) (*MonitorClient, error) {
	return poet.DialMonitor(addr, opts...)
}

// Reporter options, re-exported for callers of DialReporter.
var (
	// WithReporterReconnect bounds the cumulative backoff spent redialing
	// per outage (0 disables reconnection).
	WithReporterReconnect = poet.WithReporterReconnect
	// WithReporterBuffer bounds the unacknowledged-event buffer; Report
	// blocks when it is full.
	WithReporterBuffer = poet.WithReporterBuffer
	// WithReporterHeartbeat sets the idle keep-alive cadence.
	WithReporterHeartbeat = poet.WithReporterHeartbeat
	// WithReporterBackoff overrides the reconnect backoff schedule.
	WithReporterBackoff = poet.WithReporterBackoff
	// WithReporterLog routes reconnect diagnostics to a log function.
	WithReporterLog = poet.WithReporterLog
)

// Monitor-client options, re-exported for callers of DialMonitor.
var (
	// WithMonitorReconnect bounds the cumulative backoff spent redialing
	// per outage (0 disables reconnection: Next surfaces
	// ErrStreamInterrupted at the first transport failure).
	WithMonitorReconnect = poet.WithMonitorReconnect
	// WithMonitorReadTimeout sets how long Next waits for a frame before
	// declaring the server dead; it must exceed the server's heartbeat
	// interval.
	WithMonitorReadTimeout = poet.WithMonitorReadTimeout
	// WithMonitorBackoff overrides the reconnect backoff schedule.
	WithMonitorBackoff = poet.WithMonitorBackoff
	// WithMonitorLog routes reconnect diagnostics to a log function.
	WithMonitorLog = poet.WithMonitorLog
	// WithMonitorDeltaVC controls whether the client offers delta-encoded
	// vector timestamps at the handshake (on by default: each event ships
	// only the clock entries that changed since the previous one on the
	// connection). Pass false to force full dense vectors, e.g. against a
	// server that predates the encoding.
	WithMonitorDeltaVC = poet.WithMonitorDeltaVC
	// WithMonitorSparseClocks makes the client stamp received events with
	// sparse (trace, count)-pair clocks — O(causal past) memory per event
	// instead of O(#traces), the same causal order.
	WithMonitorSparseClocks = poet.WithMonitorSparseClocks
)

// Option configures a Monitor.
type Option func(*config)

type config struct {
	opts       core.Options
	onMatch    func(Match)
	measure    bool
	async      bool
	queueDepth int
	maxBatch   int
	policy     BackpressurePolicy
	reg        *Registry
	labels     []MetricLabel
}

// monitorMetrics holds the monitor's real instruments. All fields are
// nil when WithMetrics was not given; the nil receivers no-op.
type monitorMetrics struct {
	// events counts events consumed by the matcher
	// (ocep_monitor_events_total) — the counter tests wait on to know
	// the monitor has caught up with a delivered stream.
	events *telemetry.Counter
	// matches counts reported matches (ocep_monitor_matches_total).
	matches *telemetry.Counter
	// domains records per-trace candidate-domain sizes after causal
	// pruning (ocep_monitor_domain_size); its count equals the
	// matcher's DomainsComputed.
	domains *telemetry.Histogram
}

// WithMatchHandler invokes fn for every reported match. The handler runs
// outside the monitor's own lock, so it may call the monitor's read
// methods (Stats, Coverage, Explain, Timings, Err). Under synchronous
// Attach it still runs on the collector's delivery path and must not
// call back into the Collector; under WithAsyncDelivery it runs on the
// monitor's delivery goroutine and may use the collector freely.
func WithMatchHandler(fn func(Match)) Option {
	return func(c *config) { c.onMatch = fn }
}

// WithAsyncDelivery decouples this monitor from the collector's delivery
// path: Attach registers a bounded queue fed in batches by the
// collector and drained by a dedicated goroutine, so one slow pattern no
// longer stalls ingestion or its sibling monitors. The monitor observes
// the same linearization as a synchronous attachment (causal delivery
// order is preserved per monitor) and matches on a private store of
// shallow event copies (vector timestamps remain shared with the
// collector). Use Flush to wait for the queue to drain before reading
// end-state results, and Detach to stop the delivery goroutine.
func WithAsyncDelivery() Option {
	return func(c *config) { c.async = true }
}

// WithQueueDepth bounds the async delivery queue (default
// poet.DefaultQueueDepth). Only meaningful with WithAsyncDelivery.
func WithQueueDepth(n int) Option {
	return func(c *config) { c.queueDepth = n }
}

// WithMaxBatch caps the events fed to the matcher per batch cut (default
// poet.DefaultMaxBatch). Only meaningful with WithAsyncDelivery.
func WithMaxBatch(n int) Option {
	return func(c *config) { c.maxBatch = n }
}

// WithBackpressure selects the full-queue policy. Only BackpressureBlock
// (the default: ingestion throttles to the slowest monitor, nothing is
// lost) is valid for a Monitor: NewMonitor rejects BackpressureDrop
// combined with WithAsyncDelivery, because the matcher's store requires
// every trace's events to arrive gap-free — a dropped event would not
// merely cost some matches, it would wedge its whole trace (each later
// event rejected as out of trace order). Dropping remains available
// where a gapped stream is handled: raw batch subscribers
// (Collector.SubscribeBatch) count gaps in DeliveryStats.Dropped, and
// the TCP server disconnects an overflowing monitor connection rather
// than stream past a gap. Only meaningful with WithAsyncDelivery.
func WithBackpressure(p BackpressurePolicy) Option {
	return func(c *config) { c.policy = p }
}

// WithReportAll switches to exhaustive per-trigger enumeration and
// reports every complete match (testing/small runs; the volume can be
// combinatorial).
func WithReportAll() Option {
	return func(c *config) { c.opts.ReportAll = true }
}

// WithRepresentativeOnly reports only matches that cover a new
// (event class, trace) pair, bounding total reports by k*n.
func WithRepresentativeOnly() Option {
	return func(c *config) { c.opts.RepresentativeOnly = true }
}

// WithGuaranteedCoverage adds pinned searches so the k*n representative
// subset guarantee is exact (see DESIGN.md).
func WithGuaranteedCoverage() Option {
	return func(c *config) { c.opts.GuaranteeCoverage = true }
}

// WithoutDuplicatePruning disables the O(1) history-pruning rule.
func WithoutDuplicatePruning() Option {
	return func(c *config) { c.opts.DisablePruning = true }
}

// WithoutBackjumping falls back to chronological backtracking.
func WithoutBackjumping() Option {
	return func(c *config) { c.opts.DisableBackjumping = true }
}

// WithoutCausalDomains disables the causality-interval domain pruning
// (ablation; results are unchanged, work grows).
func WithoutCausalDomains() Option {
	return func(c *config) { c.opts.DisableCausalDomains = true }
}

// WithStaticOrder uses the compile-time evaluation order (the paper's
// behaviour) instead of dynamic most-constrained-first ordering.
func WithStaticOrder() Option {
	return func(c *config) { c.opts.StaticOrder = true }
}

// WithCompiledMatching selects the matcher execution form. The default
// (true) compiles each pattern once, at monitor construction and again
// at every attach, into a specialized form: a per-event-type trigger
// index, flattened constraint tables and pooled per-trigger search
// state; eligible members of a MonitorSet additionally share one
// class-indexed dispatcher so events skip whole non-matching patterns.
// WithCompiledMatching(false) is the escape hatch that runs the
// original interpreted path instead — the reference oracle the
// differential test harness compares against. Matches, coverage,
// truncation flags and path-independent statistics are identical in
// both modes; only speed differs.
func WithCompiledMatching(enabled bool) Option {
	return func(c *config) { c.opts.DisableCompiled = !enabled }
}

// WithParallelTraces explores the top backtracking level's traces with n
// concurrent workers (the parallelism suggested in the paper's Section
// VI). The reported match set is unchanged; report order may differ.
func WithParallelTraces(n int) Option {
	return func(c *config) { c.opts.ParallelTraces = n }
}

// WithTiming records the wall-clock matching time of every fed event;
// retrieve with Timings.
func WithTiming() Option {
	return func(c *config) { c.measure = true }
}

// WithMaxTriggerMatches bounds the complete matches explored per
// terminating event (safety valve; 0 = unlimited). The cap is one
// shared atomic under WithParallelTraces, so exactly n matches are
// reported regardless of worker count.
func WithMaxTriggerMatches(n int) Option {
	return func(c *config) { c.opts.MaxTriggerMatches = n }
}

// WithMaxTriggerSteps bounds the search work per terminating event
// (candidate instantiation attempts, shared across parallel workers).
// An exhausted trigger aborts cleanly: its partial results are reported
// with Match.Truncated set, Stats().TriggersAborted counts it, and the
// stream continues — the triggering event still joins the histories.
// 0 = unlimited.
func WithMaxTriggerSteps(n int) Option {
	return func(c *config) { c.opts.MaxTriggerSteps = n }
}

// WithTriggerDeadline bounds the wall-clock time per terminating
// event; see WithMaxTriggerSteps for the abort semantics. The deadline
// is polled every 64 search steps, so overrun is bounded and the
// uncontended fast path stays cheap. 0 = no deadline.
func WithTriggerDeadline(d time.Duration) Option {
	return func(c *config) { c.opts.TriggerDeadline = d }
}

// WithHistoryCap bounds the per-(pattern leaf, trace) event histories:
// once every pair with any retained entry is covered by a reported
// match, histories beyond the cap are evicted down to a watermark,
// keeping long-running monitors at a flat footprint. Eviction never
// changes the coverage guarantee (evicted entries belong to
// already-covered pairs). Stats().HistoryEvicted counts evictions.
// 0 = unbounded.
func WithHistoryCap(n int) Option {
	return func(c *config) { c.opts.MaxHistoryPerTrace = n }
}

// WithMetrics registers the monitor's metrics (ocep_monitor_*) in reg:
// counters for events consumed and matches reported, scrape-time
// counters mirroring the matcher's search statistics (triggers,
// candidates, backtracks, backjumps), and a histogram of candidate
// domain sizes. A nil registry disables instrumentation at zero cost.
//
// The registry keys series by name, so give each monitor sharing a
// registry its own label (e.g. ocep.L("pattern", "deadlock")) to keep
// their series distinct; identically-labeled monitors would share
// counters.
func WithMetrics(reg *Registry, labels ...MetricLabel) Option {
	return func(c *config) { c.reg = reg; c.labels = labels }
}

// L is shorthand for constructing a MetricLabel.
func L(key, value string) MetricLabel { return telemetry.L(key, value) }

// Monitor matches one causal event pattern over a delivered event
// stream. Create with NewMonitor, then either Attach it to an in-process
// Collector, Run it against a TCP monitor client, or Feed it events
// directly. A Monitor is not safe for concurrent use; Attach serializes
// it behind the collector's delivery lock.
type Monitor struct {
	pat     *pattern.Compiled
	cfg     config
	tel     monitorMetrics
	mu      sync.Mutex
	matcher *core.Matcher
	timings []time.Duration
	err     error
	// sub is the live collector subscription (sync or async); nil until
	// Attach and after Detach.
	sub *poet.Subscription
	// disp is the MonitorSet dispatcher this monitor is a member of, when
	// it was attached through a shared class index rather than its own
	// subscription; nil otherwise. Detach deregisters from it.
	disp *core.Dispatcher
}

// NewMonitor parses and compiles the pattern source and builds a monitor.
func NewMonitor(source string, options ...Option) (*Monitor, error) {
	f, err := pattern.Parse(source)
	if err != nil {
		return nil, fmt.Errorf("ocep: parsing pattern: %w", err)
	}
	pat, err := pattern.Compile(f)
	if err != nil {
		return nil, fmt.Errorf("ocep: compiling pattern: %w", err)
	}
	m := &Monitor{pat: pat}
	for _, o := range options {
		o(&m.cfg)
	}
	if m.cfg.async && m.cfg.policy == BackpressureDrop {
		return nil, fmt.Errorf("ocep: WithBackpressure(BackpressureDrop) is incompatible with WithAsyncDelivery: the matcher needs a gap-free per-trace stream, and a dropped event would wedge every later event of its trace; use BackpressureBlock, or Collector.SubscribeBatch for a raw subscriber that tolerates gaps")
	}
	m.instrument()
	m.matcher = core.NewMatcher(pat, m.cfg.opts)
	m.matcher.SetDomainHistogram(m.tel.domains)
	return m, nil
}

// instrument registers the monitor's series in cfg.reg (a no-op for a
// nil registry). The scrape-time counters read Stats under the monitor
// lock; they reset when the monitor is re-Attached (a new matcher).
func (m *Monitor) instrument() {
	reg, ls := m.cfg.reg, m.cfg.labels
	m.tel.events = reg.Counter("ocep_monitor_events_total",
		"Events consumed by the monitor's matcher.", ls...)
	m.tel.matches = reg.Counter("ocep_monitor_matches_total",
		"Matches reported by the monitor.", ls...)
	m.tel.domains = reg.Histogram("ocep_monitor_domain_size",
		"Per-trace candidate domain sizes after causal-interval pruning.", ls...)
	reg.CounterFunc("ocep_monitor_triggers_total",
		"Terminating events that started a search.",
		func() int64 { return int64(m.Stats().Triggers) }, ls...)
	reg.CounterFunc("ocep_monitor_candidates_total",
		"Candidate instantiations tried by the search.",
		func() int64 { return int64(m.Stats().CandidatesTried) }, ls...)
	reg.CounterFunc("ocep_monitor_backtracks_total",
		"Candidate instantiations whose subtree found no complete match.",
		func() int64 { return int64(m.Stats().Backtracks) }, ls...)
	reg.CounterFunc("ocep_monitor_backjumps_total",
		"Conflict-directed cutoffs taken by the search.",
		func() int64 { return int64(m.Stats().Backjumps) }, ls...)
	reg.CounterFunc("ocep_monitor_triggers_aborted_total",
		"Triggers aborted by the search budget (WithMaxTriggerSteps / WithTriggerDeadline / WithMaxTriggerMatches).",
		func() int64 { return int64(m.Stats().TriggersAborted) }, ls...)
	reg.CounterFunc("ocep_monitor_history_evicted_total",
		"History entries evicted by the WithHistoryCap retention watermark.",
		func() int64 { return int64(m.Stats().HistoryEvicted) }, ls...)
}

// PatternLength returns the number of primitive events in the pattern
// (the k of the k*n subset bound).
func (m *Monitor) PatternLength() int { return m.pat.K() }

// RegisterTrace pre-registers a trace name (class process attributes
// match trace names). Only needed when feeding events directly.
func (m *Monitor) RegisterTrace(name string) TraceID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.matcher.RegisterTrace(name)
}

// Feed consumes the next event of a linearized delivery stream and
// returns the newly reported matches.
func (m *Monitor) Feed(e *Event) ([]Match, error) {
	m.mu.Lock()
	matches, err := m.feedLocked(e)
	m.mu.Unlock()
	if err != nil {
		return nil, err
	}
	m.emit(matches)
	return matches, nil
}

// feedLocked advances the matcher. Match callbacks are NOT invoked here:
// callers emit after releasing m.mu, so WithMatchHandler callbacks can
// safely call the monitor's read methods.
func (m *Monitor) feedLocked(e *Event) ([]Match, error) {
	var start time.Time
	if m.cfg.measure {
		start = time.Now()
	}
	matches, err := m.matcher.Feed(e)
	if m.cfg.measure {
		m.timings = append(m.timings, time.Since(start))
	}
	m.tel.events.Inc()
	if err != nil {
		return nil, err
	}
	m.tel.matches.Add(int64(len(matches)))
	return matches, nil
}

// emit invokes the match callback outside the monitor lock.
func (m *Monitor) emit(matches []Match) {
	if m.cfg.onMatch == nil {
		return
	}
	for _, match := range matches {
		m.cfg.onMatch(match)
	}
}

// Attach subscribes the monitor to an in-process collector: every event
// the collector delivers (past and future) is fed to the matcher.
//
// By default the feed is synchronous, on the collector's delivery path,
// and the monitor shares the collector's store (no second copy of any
// vector timestamp). With WithAsyncDelivery the monitor instead drains a
// bounded queue on its own goroutine, matching over a private store of
// shallow event copies (timestamps still shared); see Flush, Detach and
// DeliveryStats. Check Err after the run in both modes.
//
// Attaching an already-attached monitor detaches it first: the previous
// subscription is cancelled (an async queue is drained and its delivery
// goroutine stopped), and the matcher and any recorded Err are reset
// before the new replay begins.
func (m *Monitor) Attach(c *Collector) {
	m.Detach()
	m.mu.Lock()
	m.err = nil
	m.mu.Unlock()
	if m.cfg.async {
		m.attachAsync(c)
		return
	}
	m.mu.Lock()
	m.matcher = core.NewMatcherOn(m.pat, c.Store(), m.cfg.opts)
	m.matcher.SetDomainHistogram(m.tel.domains)
	m.mu.Unlock()
	sub := c.SubscribeReplay(func(e *Event) {
		m.mu.Lock()
		matches, err := m.feedLocked(e)
		if err != nil && m.err == nil {
			m.err = err
		}
		m.mu.Unlock()
		m.emit(matches)
	})
	m.mu.Lock()
	m.sub = sub
	m.mu.Unlock()
}

// sharedDispatchEligible reports whether the monitor can be served by a
// MonitorSet's shared class-indexed dispatcher. Excluded: async members
// (they own a private store and queue), WithTiming (per-event wall
// clock must cover every event, not just dispatched ones), WithMetrics
// (ocep_monitor_events_total counts per-monitor feeds, which dispatch
// deliberately avoids), the interpreted escape hatch, and patterns too
// long for a trigger index.
func (m *Monitor) sharedDispatchEligible() bool {
	return !m.cfg.async && !m.cfg.measure && m.cfg.reg == nil &&
		!m.cfg.opts.DisableCompiled && m.pat.K() <= pattern.MaxIndexLeaves
}

// joinDispatcher rebuilds the matcher on the collector's store and
// registers it with the set's shared dispatcher. The dispatcher's feed
// callback replicates the synchronous Attach path (feed under the
// monitor lock, emit outside it); the caller subscribes the dispatcher
// to the collector afterwards, so the replay reaches every member.
func (m *Monitor) joinDispatcher(d *core.Dispatcher, c *Collector) {
	m.Detach()
	m.mu.Lock()
	m.err = nil
	m.matcher = core.NewMatcherOn(m.pat, c.Store(), m.cfg.opts)
	m.matcher.SetDomainHistogram(m.tel.domains)
	m.disp = d
	mat := m.matcher
	m.mu.Unlock()
	d.Add(mat, func(e *Event, commAt int) {
		m.mu.Lock()
		matches := mat.FeedDispatched(e, commAt)
		m.mu.Unlock()
		m.emit(matches)
	})
}

// recordErr records the first subscription error (shared-dispatch
// members all observe a dispatcher stream error).
func (m *Monitor) recordErr(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
	}
	m.mu.Unlock()
}

// attachAsync registers the monitor's bounded delivery queue. The
// matcher owns a private store fed with the queue's event copies; trace
// names arrive as announcements so the store mirrors the collector's
// trace numbering exactly.
func (m *Monitor) attachAsync(c *Collector) {
	m.mu.Lock()
	m.matcher = core.NewMatcher(m.pat, m.cfg.opts)
	m.matcher.SetDomainHistogram(m.tel.domains)
	m.mu.Unlock()
	opts := poet.AsyncOptions{
		QueueDepth: m.cfg.queueDepth,
		MaxBatch:   m.cfg.maxBatch,
		Policy:     m.cfg.policy,
		OnTrace: func(t TraceID, name string) {
			m.mu.Lock()
			m.matcher.NameTrace(t, name)
			m.mu.Unlock()
		},
	}
	sub := c.SubscribeBatchReplay(func(batch []*Event) {
		m.mu.Lock()
		var matches []Match
		var err error
		if m.cfg.measure {
			// WithTiming wants per-event wall-clock times: fall back to
			// the per-event path inside the batch.
			for _, e := range batch {
				var ms []Match
				if ms, err = m.feedLocked(e); err != nil {
					break
				}
				matches = append(matches, ms...)
			}
		} else {
			matches, err = m.matcher.FeedBatch(batch)
			m.tel.events.Add(int64(len(batch)))
			if err == nil {
				m.tel.matches.Add(int64(len(matches)))
			}
		}
		if err != nil && m.err == nil {
			m.err = err
		}
		m.mu.Unlock()
		m.emit(matches)
	}, opts)
	m.mu.Lock()
	m.sub = sub
	m.mu.Unlock()
}

// Flush blocks until the monitor has consumed every event the collector
// delivered before the call — the drain protocol that gives tests and
// daemons a deterministic end state. A no-op for synchronous
// attachments (they are always drained) and unattached monitors. Must
// not be called from a WithMatchHandler callback.
func (m *Monitor) Flush() {
	m.mu.Lock()
	sub := m.sub
	m.mu.Unlock()
	if sub != nil {
		sub.Flush()
	}
}

// Detach cancels the collector subscription. For an async attachment the
// queue is drained and the delivery goroutine stopped before Detach
// returns; a shared-dispatch member is deregistered from the set's
// dispatcher (dropping its class-index entries). Safe to call more than
// once.
func (m *Monitor) Detach() {
	m.mu.Lock()
	sub := m.sub
	m.sub = nil
	d := m.disp
	m.disp = nil
	mat := m.matcher
	m.mu.Unlock()
	if sub != nil {
		sub.Cancel()
	}
	if d != nil {
		d.Remove(mat)
	}
}

// DeliveryStats returns the async delivery-queue counters: events
// enqueued, handled and dropped, batches cut, and the current and peak
// queue depth. Zero for synchronous or unattached monitors.
func (m *Monitor) DeliveryStats() DeliveryStats {
	m.mu.Lock()
	sub := m.sub
	m.mu.Unlock()
	if sub == nil {
		return DeliveryStats{}
	}
	return sub.Stats()
}

// Run drains a linearized event source — a TCP monitor client, or the
// merged stream of a sharded tier — until it ends, feeding every event.
// It returns the first feed or transport error, or nil on a clean end
// of stream.
func (m *Monitor) Run(client poet.EventSource) error {
	for {
		e, err := client.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		m.mu.Lock()
		if name, ok := client.TraceName(e.ID.Trace); ok {
			// NameTrace, not RegisterTrace: the event carries the
			// collector's trace ID, which must be mirrored even when
			// traces are first seen out of ID order.
			m.matcher.NameTrace(e.ID.Trace, name)
		}
		matches, err := m.feedLocked(e)
		m.mu.Unlock()
		if err != nil {
			return err
		}
		m.emit(matches)
	}
}

// Err returns the first error recorded by an Attach subscription.
func (m *Monitor) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// Stats returns the matcher's cumulative counters.
func (m *Monitor) Stats() MatcherStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.matcher.Stats()
}

// CoveredPair is one (event class, trace) pair of the representative
// subset.
type CoveredPair = core.CoveredPair

// Coverage returns the representative subset's footprint: the (pattern
// leaf, trace) pairs witnessed by reported matches so far.
func (m *Monitor) Coverage() []CoveredPair {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.matcher.Coverage()
}

// Explain renders a human-readable account of why a reported match
// holds: leaf bindings, pairwise constraints with vector-timestamp
// evidence, and compound-constraint witnesses. It takes no lock (the
// pattern is immutable and the store append-only) so it is safe to call
// from a WithMatchHandler callback; do not call it concurrently with
// Attach.
func (m *Monitor) Explain(match Match) string {
	return core.ExplainMatch(m.pat, match, m.matcher.Store().TraceName)
}

// Timings returns the recorded per-event matching times (WithTiming).
func (m *Monitor) Timings() []time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]time.Duration, len(m.timings))
	copy(out, m.timings)
	return out
}

// CheckPattern parses and compiles a pattern source, returning a
// human-readable summary of the compiled form (classes, leaves,
// constraints, terminating events) — the functionality of cmd/patternc.
func CheckPattern(source string) (string, error) {
	f, err := pattern.Parse(source)
	if err != nil {
		return "", err
	}
	pat, err := pattern.Compile(f)
	if err != nil {
		return "", err
	}
	return pattern.Describe(pat), nil
}
