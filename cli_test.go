package ocep_test

import (
	"bufio"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ocep"
	"ocep/internal/proctest"
)

func TestPatterncCLI(t *testing.T) {
	bin := proctest.BuildTool(t, "patternc")

	t.Run("file", func(t *testing.T) {
		pat := filepath.Join(t.TempDir(), "p.pat")
		src := `A := [*, a, *]; B := [*, b, *]; pattern := A -> B;`
		if err := os.WriteFile(pat, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		out, err := exec.Command(bin, pat).CombinedOutput()
		if err != nil {
			t.Fatalf("patternc: %v\n%s", err, out)
		}
		for _, want := range []string{"leaves (k=2)", "terminating"} {
			if !strings.Contains(string(out), want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("stdin", func(t *testing.T) {
		cmd := exec.Command(bin, "-")
		cmd.Stdin = strings.NewReader(`A := [*, a, *]; pattern := A;`)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("patternc -: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "leaves (k=1)") {
			t.Errorf("unexpected output:\n%s", out)
		}
	})

	t.Run("builtin", func(t *testing.T) {
		out, err := exec.Command(bin, "-builtin", "ordering").CombinedOutput()
		if err != nil {
			t.Fatalf("patternc -builtin: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "Synch") {
			t.Errorf("built-in ordering pattern missing Synch:\n%s", out)
		}
	})

	t.Run("error", func(t *testing.T) {
		cmd := exec.Command(bin, "-")
		cmd.Stdin = strings.NewReader(`pattern := Zed;`)
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("invalid pattern must fail, got:\n%s", out)
		}
		if !strings.Contains(string(out), "undefined class") {
			t.Errorf("error output missing cause:\n%s", out)
		}
	})
}

func TestPoetdAndOcepmonCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping process-spawning test")
	}
	poetd := proctest.BuildTool(t, "poetd")
	ocepmon := proctest.BuildTool(t, "ocepmon")
	addr := proctest.FreePort(t)
	dumpFile := filepath.Join(t.TempDir(), "run.poet")

	// Start the daemon.
	daemon := exec.Command(poetd, "-listen", addr, "-dump", dumpFile)
	daemonOut, err := daemon.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = daemon.Process.Kill()
		_, _ = daemon.Process.Wait()
	}()
	// Wait for "listening".
	scanner := bufio.NewScanner(daemonOut)
	ready := false
	for scanner.Scan() {
		if strings.Contains(scanner.Text(), "listening") {
			ready = true
			break
		}
	}
	if !ready {
		t.Fatalf("poetd did not report listening")
	}
	go func() { // drain remaining daemon output
		for scanner.Scan() {
		}
	}()

	// Start a monitor on the race pattern.
	pat := filepath.Join(t.TempDir(), "race.pat")
	src := `
		W := [primary, write, $key];
		R := [replica, read,  $key];
		pattern := W || R;
	`
	if err := os.WriteFile(pat, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	mon := exec.Command(ocepmon, "-addr", addr, "-pattern", pat, "-stats")
	monOut := &proctest.SyncBuffer{}
	mon.Stdout = monOut
	mon.Stderr = monOut
	if err := mon.Start(); err != nil {
		t.Fatal(err)
	}

	// Report a stale-read scenario as a target.
	rep, err := ocep.DialReporter(addr)
	if err != nil {
		t.Fatal(err)
	}
	raws := []ocep.RawEvent{
		{Trace: "primary", Seq: 1, Kind: ocep.KindInternal, Type: "write", Text: "k"},
		{Trace: "replica", Seq: 1, Kind: ocep.KindInternal, Type: "read", Text: "k"},
	}
	for _, r := range raws {
		if err := rep.Report(r); err != nil {
			t.Fatal(err)
		}
	}
	_ = rep.Close()

	// Give the pipeline a moment, then stop everything gracefully.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if strings.Contains(monOut.String(), "match #1") {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := daemon.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if err := daemon.Wait(); err != nil {
		t.Fatalf("poetd exit: %v", err)
	}
	if err := mon.Wait(); err != nil {
		t.Fatalf("ocepmon exit: %v\n%s", err, monOut)
	}
	out := monOut.String()
	if !strings.Contains(out, "match #1") {
		t.Fatalf("monitor reported no match:\n%s", out)
	}
	if !strings.Contains(out, "complete matches: 1") {
		t.Errorf("stats missing:\n%s", out)
	}

	// The daemon dumped the trace; reload it into a fresh collector.
	c := ocep.NewCollector()
	n, err := c.ReloadFile(dumpFile)
	if err != nil {
		t.Fatalf("reloading dump: %v", err)
	}
	if n != len(raws) {
		t.Fatalf("dump holds %d events, want %d", n, len(raws))
	}
}

// TestFullPipelineCLI runs the complete distributed demo: poetd serving,
// ocepgen generating the ordering-bug workload over TCP, and ocepmon
// matching the built-in pattern — three separate processes.
func TestFullPipelineCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping process-spawning test")
	}
	poetd := proctest.BuildTool(t, "poetd")
	ocepmon := proctest.BuildTool(t, "ocepmon")
	ocepgen := proctest.BuildTool(t, "ocepgen")
	addr := proctest.FreePort(t)

	daemon := exec.Command(poetd, "-listen", addr, "-quiet")
	daemonOut, err := daemon.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = daemon.Process.Kill()
		_, _ = daemon.Process.Wait()
	}()
	scanner := bufio.NewScanner(daemonOut)
	for scanner.Scan() {
		if strings.Contains(scanner.Text(), "listening") {
			break
		}
	}
	go func() {
		for scanner.Scan() {
		}
	}()

	mon := exec.Command(ocepmon, "-addr", addr, "-builtin", "ordering", "-stats")
	monOut := &proctest.SyncBuffer{}
	mon.Stdout = monOut
	mon.Stderr = monOut
	if err := mon.Start(); err != nil {
		t.Fatal(err)
	}

	gen := exec.Command(ocepgen, "-addr", addr, "-case", "ordering",
		"-traces", "8", "-events", "2000", "-bug", "0.5", "-seed", "6")
	genOut, err := gen.CombinedOutput()
	if err != nil {
		t.Fatalf("ocepgen: %v\n%s", err, genOut)
	}
	if !strings.Contains(string(genOut), "violations seeded") {
		t.Fatalf("generator output unexpected:\n%s", genOut)
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if strings.Contains(monOut.String(), "match #1") {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := daemon.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if err := daemon.Wait(); err != nil {
		t.Fatalf("poetd: %v", err)
	}
	if err := mon.Wait(); err != nil {
		t.Fatalf("ocepmon: %v\n%s", err, monOut)
	}
	if !strings.Contains(monOut.String(), "match #1") {
		t.Fatalf("monitor found no ordering violations:\n%s", monOut)
	}
}

func TestOcepbenchCLI(t *testing.T) {
	bench := proctest.BuildTool(t, "ocepbench")

	out, err := exec.Command(bench, "-fig", "3").CombinedOutput()
	if err != nil {
		t.Fatalf("ocepbench -fig 3: %v\n%s", err, out)
	}
	for _, want := range []string{"All:", "Window:", "OCEP:"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("fig 3 output missing %q:\n%s", want, out)
		}
	}

	if out, err := exec.Command(bench, "-fig", "99").CombinedOutput(); err == nil {
		t.Fatalf("unknown figure must fail:\n%s", out)
	}
	if out, err := exec.Command(bench).CombinedOutput(); err == nil {
		t.Fatalf("no flags must fail with usage:\n%s", out)
	}
	out, err = exec.Command(bench, "-lattice").CombinedOutput()
	if err != nil {
		t.Fatalf("ocepbench -lattice: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Lattice cuts") {
		t.Errorf("lattice output wrong:\n%s", out)
	}
}

func TestOcepviewCLI(t *testing.T) {
	ocepview := proctest.BuildTool(t, "ocepview")

	// Build a small dump with a stale read in it.
	collector := ocep.NewCollector()
	collector.RetainLog()
	raws := []ocep.RawEvent{
		{Trace: "primary", Seq: 1, Kind: ocep.KindInternal, Type: "write", Text: "k"},
		{Trace: "primary", Seq: 2, Kind: ocep.KindSend, Type: "replicate", Text: "k", MsgID: 1},
		{Trace: "replica", Seq: 1, Kind: ocep.KindInternal, Type: "read", Text: "k"},
		{Trace: "replica", Seq: 2, Kind: ocep.KindReceive, Type: "apply", Text: "k", MsgID: 1},
	}
	for _, r := range raws {
		if err := collector.Report(r); err != nil {
			t.Fatal(err)
		}
	}
	dump := filepath.Join(t.TempDir(), "view.poet")
	if err := collector.DumpFile(dump); err != nil {
		t.Fatal(err)
	}
	pat := filepath.Join(t.TempDir(), "stale.pat")
	src := `W := [primary, write, $k]; R := [replica, read, $k]; pattern := W || R;`
	if err := os.WriteFile(pat, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	out, err := exec.Command(ocepview, "-dump", dump, "-arrows", "-pattern", pat).CombinedOutput()
	if err != nil {
		t.Fatalf("ocepview: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"primary |", "replica |", "matched 1 reported", "#", "messages:"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}

	// Causal slice extraction: the stale-read match involves only the
	// write and the read, so the slice excludes the replication pair.
	sliceFile := filepath.Join(t.TempDir(), "slice.poet.gz")
	out, err = exec.Command(ocepview, "-dump", dump, "-pattern", pat, "-slice", sliceFile).CombinedOutput()
	if err != nil {
		t.Fatalf("ocepview -slice: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "causal slice: 2 of 4 events") {
		t.Errorf("slice summary wrong:\n%s", out)
	}
	rc := ocep.NewCollector()
	if n, err := rc.ReloadFile(sliceFile); err != nil || n != 2 {
		t.Fatalf("slice reload = %d, %v", n, err)
	}

	// Errors: missing dump flag, window too wide, slice without pattern.
	if out, err := exec.Command(ocepview).CombinedOutput(); err == nil {
		t.Fatalf("missing -dump must fail:\n%s", out)
	}
	if out, err := exec.Command(ocepview, "-dump", dump, "-width", "2").CombinedOutput(); err == nil {
		t.Fatalf("too-narrow width must fail:\n%s", out)
	}
	if out, err := exec.Command(ocepview, "-dump", dump, "-slice", sliceFile).CombinedOutput(); err == nil {
		t.Fatalf("-slice without a pattern must fail:\n%s", out)
	}
}

func TestOcepmonBuiltinFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping process-spawning test")
	}
	ocepmon := proctest.BuildTool(t, "ocepmon")
	// Unknown builtin fails fast (no server needed: flag parsing first).
	out, err := exec.Command(ocepmon, "-builtin", "nope", "-addr", "127.0.0.1:1").CombinedOutput()
	if err == nil {
		t.Fatalf("unknown builtin must fail:\n%s", out)
	}
	if !strings.Contains(string(out), "unknown built-in") {
		t.Errorf("error output:\n%s", out)
	}
}
