package ocep_test

// Failover chaos differential: each case study runs against a real
// primary/standby poetd pair — the standby tails the primary with
// -follow — while the clients dial the two addresses as one endpoint
// pool. Mid-workload the primary is SIGKILLed; the standby promotes
// itself once the primary stays unreachable past its reconnect budget,
// the pooled reporter and monitor fail over to it, and the run must
// report exactly the match set and coverage of a fault-free in-process
// run. This is the end-to-end proof of the HA tentpole: acknowledged
// events are always replicated before the ack is released, the
// monitor's delivery never runs ahead of the replica's confirmation,
// and the retransmitted suffix lands as idempotent no-ops on the
// promoted standby — so a primary crash is invisible in the output.

import (
	"os/exec"
	"sync"
	"syscall"
	"testing"
	"time"

	"ocep"
	"ocep/internal/proctest"
	"ocep/internal/workload"
)

// startPoetdHA launches a poetd child with a telemetry listener and any
// extra flags (the standby adds -follow), and waits until it accepts
// protocol connections. A standby listens immediately — its session
// gate rejects hellos retriably, but the socket answers — so the same
// probe works for both roles.
func startPoetdHA(t *testing.T, bin, addr, dataDir, metricsAddr string, out *proctest.SyncBuffer, extra ...string) *exec.Cmd {
	t.Helper()
	args := []string{
		"-listen", addr,
		"-data-dir", dataDir,
		"-metrics-addr", metricsAddr,
		"-fsync", "always",
		"-snapshot-every", "64",
		"-ack-interval", "5ms",
		"-heartbeat", "25ms",
		"-quiet",
	}
	args = append(args, extra...)
	return proctest.StartServer(t, bin, out, addr, args...)
}

// failoverCase is one case study for the kill-the-primary differential.
type failoverCase struct {
	name     string
	pattern  string
	generate func(sink *captureSink) error
}

func failoverCases() []failoverCase {
	return []failoverCase{
		{
			name:    "msgrace",
			pattern: workload.MsgRacePattern(),
			generate: func(sink *captureSink) error {
				_, err := workload.GenMsgRace(workload.MsgRaceConfig{
					Ranks: 4, Waves: 20, Sink: sink,
				})
				return err
			},
		},
		{
			name:    "deadlock",
			pattern: workload.DeadlockPattern(2),
			generate: func(sink *captureSink) error {
				_, err := workload.GenDeadlock(workload.DeadlockConfig{
					Ranks: 4, CycleLen: 2, Rounds: 60, BugProb: 0.2, Seed: 7, Sink: sink,
				})
				return err
			},
		},
		{
			name:    "atomicity",
			pattern: workload.AtomicityPattern(),
			generate: func(sink *captureSink) error {
				_, err := workload.GenAtomicity(workload.AtomicityConfig{
					Threads: 3, Iterations: 30, BugProb: 0.15, Seed: 7, Sink: sink,
				})
				return err
			},
		},
		{
			name:    "ordering",
			pattern: workload.OrderingPattern(),
			generate: func(sink *captureSink) error {
				_, err := workload.GenReplication(workload.ReplicationConfig{
					Followers: 6, UpdatesPerSession: 8, BugProb: 0.5, Seed: 7, Sink: sink,
				})
				return err
			},
		},
	}
}

func TestFailoverKilledPrimaryMatchesFaultFreeRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping process-killing failover differential")
	}
	poetd := proctest.BuildTool(t, "poetd")
	for _, tc := range failoverCases() {
		t.Run(tc.name, func(t *testing.T) { runFailoverCase(t, poetd, tc) })
	}
}

func runFailoverCase(t *testing.T, poetd string, tc failoverCase) {
	// One captured workload drives both the fault-free baseline and the
	// killed-primary run.
	sink := &captureSink{}
	if err := tc.generate(sink); err != nil {
		t.Fatal(err)
	}
	events := sink.events
	if len(events) < 100 {
		t.Fatalf("workload too small (%d events) for a meaningful mid-stream kill", len(events))
	}
	cleanMatches, cleanCov, cleanStats := runCleanBaselineStats(t, tc.pattern, events)
	if len(cleanMatches) == 0 {
		t.Fatal("fault-free run reported no matches; the differential comparison is vacuous")
	}

	addrP, addrS := proctest.FreePort(t), proctest.FreePort(t)
	metricsP, metricsS := proctest.FreePort(t), proctest.FreePort(t)
	out := &proctest.SyncBuffer{}
	primary := startPoetdHA(t, poetd, addrP, t.TempDir(), metricsP, out)
	defer func() {
		if primary.ProcessState == nil {
			_ = primary.Process.Kill()
			_ = primary.Wait()
		}
	}()
	standby := startPoetdHA(t, poetd, addrS, t.TempDir(), metricsS, out,
		"-follow", addrP,
		"-follow-reconnect", "2s")
	defer func() {
		if standby.ProcessState == nil {
			_ = standby.Process.Kill()
			_ = standby.Wait()
		}
	}()
	// Replication must be attached before events flow: from then on every
	// acknowledgement is gated on the replica's confirmation, so anything
	// the reporter considers delivered survives the primary.
	proctest.WaitMetric(t, "the standby's replication session",
		metricsP, "poet_wire_replica_sessions_total", 1)

	pool := addrP + "," + addrS
	rep, err := ocep.DialReporter(pool,
		ocep.WithReporterBackoff(5*time.Millisecond, 200*time.Millisecond),
		ocep.WithReporterHeartbeat(20*time.Millisecond),
		ocep.WithReporterReconnect(60*time.Second),
		ocep.WithReporterLog(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	cli, err := ocep.DialMonitor(pool,
		ocep.WithMonitorBackoff(5*time.Millisecond, 200*time.Millisecond),
		ocep.WithMonitorReconnect(60*time.Second),
		ocep.WithMonitorLog(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	var mu sync.Mutex
	var matches []ocep.Match
	reg := ocep.NewRegistry()
	mon, err := ocep.NewMonitor(tc.pattern,
		ocep.WithReportAll(),
		ocep.WithMetrics(reg),
		ocep.WithMatchHandler(func(m ocep.Match) {
			mu.Lock()
			matches = append(matches, m)
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() { runDone <- mon.Run(cli) }()

	// SIGKILL the primary halfway through the stream. The clients are
	// never told: the reporter's pool must fail over and retransmit its
	// unacknowledged suffix, the monitor must resume at its exact offset,
	// and both must ride out the standby's promotion window (its 2s
	// reconnect budget) on retriable rejections.
	for i, e := range events {
		if i == len(events)/2 {
			if err := rep.Flush(); err != nil {
				t.Fatalf("flush before kill: %v", err)
			}
			if err := primary.Process.Signal(syscall.SIGKILL); err != nil {
				t.Fatalf("killing primary: %v", err)
			}
			_ = primary.Wait()
		}
		if err := rep.Report(e); err != nil {
			t.Fatalf("report event %d: %v", i, err)
		}
	}
	if err := rep.Flush(); err != nil {
		t.Fatalf("flush after failover: %v", err)
	}
	waitCounter(t, "monitor to consume the full stream across the failover",
		reg.FindCounter("ocep_monitor_events_total"), int64(len(events)))

	// SIGINT ends the promoted standby immediately and cleanly: monitor
	// queues are flushed and End frames sent, so Run returns nil.
	if err := standby.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	if err := standby.Wait(); err != nil {
		t.Fatalf("standby clean shutdown: %v\noutput:\n%s", err, out.String())
	}
	if err := <-runDone; err != nil {
		t.Fatalf("monitor run across the failover: %v", err)
	}

	repStats, monStats := rep.Stats(), cli.Stats()
	t.Logf("failover run: reporter %+v, monitor %+v", repStats, monStats)
	if monStats.Received != len(events) {
		t.Fatalf("monitor received %d events, want exactly %d (no loss, no duplication)", monStats.Received, len(events))
	}
	if repStats.Failovers == 0 || monStats.Failovers == 0 {
		t.Fatalf("no session failed over (reporter %d, monitor %d); the kill proved nothing",
			repStats.Failovers, monStats.Failovers)
	}

	name := func(tr ocep.TraceID) string {
		n, _ := cli.TraceName(tr)
		return n
	}
	gotMatches := matchSignatures(matches, name)
	gotCov := coverageSignatures(mon.Coverage(), name)
	if !equalStrings(cleanMatches, gotMatches) {
		t.Errorf("match sets differ:\nfault-free (%d): %v\nkilled-primary (%d): %v",
			len(cleanMatches), cleanMatches, len(gotMatches), gotMatches)
	}
	if !equalStrings(cleanCov, gotCov) {
		t.Errorf("coverage differs:\nfault-free: %v\nkilled-primary: %v", cleanCov, gotCov)
	}
	// The matcher's semantic accounting must agree too — the failover
	// run saw the same stream, so it triggered the same searches and
	// classified every completion identically. (Search-effort counters
	// like backtracks are excluded: they are deterministic in the stream
	// but not part of the observable contract.)
	cs, fs := cleanStats, mon.Stats()
	if cs.EventsSeen != fs.EventsSeen || cs.EventsMatched != fs.EventsMatched ||
		cs.Triggers != fs.Triggers || cs.CompleteMatches != fs.CompleteMatches ||
		cs.Reported != fs.Reported || cs.Redundant != fs.Redundant ||
		cs.TriggersAborted != fs.TriggersAborted {
		t.Errorf("matcher stats differ:\nfault-free:     %+v\nkilled-primary: %+v", cs, fs)
	}
}
