module ocep

go 1.22
