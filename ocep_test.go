package ocep_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"ocep"
)

const requestResponse = `
	Req  := [*, request, $id];
	Resp := [*, response, $id];
	pattern := Req -> Resp;
`

func TestMonitorAttach(t *testing.T) {
	collector := ocep.NewCollector()
	var mu sync.Mutex
	var matched []ocep.Match
	mon, err := ocep.NewMonitor(requestResponse, ocep.WithMatchHandler(func(m ocep.Match) {
		mu.Lock()
		matched = append(matched, m)
		mu.Unlock()
	}), ocep.WithTiming())
	if err != nil {
		t.Fatal(err)
	}
	mon.Attach(collector)

	report := func(raw ocep.RawEvent) {
		t.Helper()
		if err := collector.Report(raw); err != nil {
			t.Fatal(err)
		}
	}
	report(ocep.RawEvent{Trace: "client", Seq: 1, Kind: ocep.KindSend, Type: "request", Text: "42", MsgID: 1})
	report(ocep.RawEvent{Trace: "server", Seq: 1, Kind: ocep.KindReceive, Type: "response", Text: "42", MsgID: 1})

	if err := mon.Err(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(matched) != 1 {
		t.Fatalf("matched = %d want 1", len(matched))
	}
	if got := matched[0].Bindings["id"]; got != "42" {
		t.Fatalf("$id binding = %q want 42", got)
	}
	if stats := mon.Stats(); stats.Reported != 1 {
		t.Fatalf("stats.Reported = %d", stats.Reported)
	}
	if ts := mon.Timings(); len(ts) != 2 {
		t.Fatalf("timings = %d want 2", len(ts))
	}
}

func TestMonitorAttachReplaysHistory(t *testing.T) {
	collector := ocep.NewCollector()
	if err := collector.Report(ocep.RawEvent{Trace: "p", Seq: 1, Kind: ocep.KindInternal, Type: "request", Text: "1"}); err != nil {
		t.Fatal(err)
	}
	mon, err := ocep.NewMonitor(requestResponse)
	if err != nil {
		t.Fatal(err)
	}
	mon.Attach(collector) // the early event is replayed
	if err := collector.Report(ocep.RawEvent{Trace: "p", Seq: 2, Kind: ocep.KindInternal, Type: "response", Text: "1"}); err != nil {
		t.Fatal(err)
	}
	if err := mon.Err(); err != nil {
		t.Fatal(err)
	}
	if stats := mon.Stats(); stats.Reported != 1 {
		t.Fatalf("reported = %d want 1 (replay missed the early request?)", stats.Reported)
	}
}

func TestMonitorFeedDirect(t *testing.T) {
	mon, err := ocep.NewMonitor(`A := ['proc-7', ping, *]; pattern := A;`)
	if err != nil {
		t.Fatal(err)
	}
	tid := mon.RegisterTrace("proc-7")
	matches, err := mon.Feed(&ocep.Event{
		ID:   ocep.EventID{Trace: tid, Index: 1},
		Kind: ocep.KindInternal,
		Type: "ping",
		VC:   ocep.VC{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Fatalf("matches = %d want 1", len(matches))
	}
	if mon.PatternLength() != 1 {
		t.Fatalf("pattern length = %d", mon.PatternLength())
	}
}

func TestMonitorOverTCP(t *testing.T) {
	collector := ocep.NewCollector()
	server := ocep.NewServer(collector, nil)
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	client, err := ocep.DialMonitor(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	mon, err := ocep.NewMonitor(requestResponse)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- mon.Run(client) }()

	rep, err := ocep.DialReporter(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if err := rep.Report(ocep.RawEvent{Trace: "c", Seq: 1, Kind: ocep.KindSend, Type: "request", Text: "9", MsgID: 5}); err != nil {
		t.Fatal(err)
	}
	if err := rep.Report(ocep.RawEvent{Trace: "s", Seq: 1, Kind: ocep.KindReceive, Type: "response", Text: "9", MsgID: 5}); err != nil {
		t.Fatal(err)
	}

	deadline := time.After(5 * time.Second)
	for mon.Stats().Reported == 0 {
		select {
		case err := <-done:
			t.Fatalf("monitor loop ended early: %v", err)
		case <-deadline:
			t.Fatalf("no match within deadline")
		default:
			time.Sleep(2 * time.Millisecond)
		}
	}
	if err := server.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("monitor run: %v", err)
	}
}

func TestMonitorExplain(t *testing.T) {
	collector := ocep.NewCollector()
	var explanation string
	var mon *ocep.Monitor
	mon, err := ocep.NewMonitor(requestResponse, ocep.WithMatchHandler(func(m ocep.Match) {
		// Calling Explain from inside the handler must not deadlock.
		explanation = mon.Explain(m)
	}))
	if err != nil {
		t.Fatal(err)
	}
	mon.Attach(collector)
	if err := collector.Report(ocep.RawEvent{Trace: "c", Seq: 1, Kind: ocep.KindSend, Type: "request", Text: "8", MsgID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := collector.Report(ocep.RawEvent{Trace: "s", Seq: 1, Kind: ocep.KindReceive, Type: "response", Text: "8", MsgID: 1}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"match:", "$id = \"8\"", "constraints:", "->"} {
		if !strings.Contains(explanation, want) {
			t.Errorf("explanation missing %q:\n%s", want, explanation)
		}
	}
}

func TestNewMonitorErrors(t *testing.T) {
	if _, err := ocep.NewMonitor(`garbage`); err == nil {
		t.Fatalf("bad source must fail")
	}
	if _, err := ocep.NewMonitor(`A := [*,a,*]; A $x; pattern := $x -> $x;`); err == nil {
		t.Fatalf("uncompilable pattern must fail")
	}
}

func TestCheckPattern(t *testing.T) {
	out, err := ocep.CheckPattern(requestResponse)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"classes:", "leaves (k=2):", "terminating", "Req", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("description missing %q:\n%s", want, out)
		}
	}
	if _, err := ocep.CheckPattern("x"); err == nil {
		t.Fatalf("CheckPattern must propagate errors")
	}
}
