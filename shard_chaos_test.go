package ocep_test

// Shard chaos suite: the partition-tolerance proof for the sharded
// collector tier. Every cross-shard dependency — the peer export links
// and the merged monitor's per-shard streams — is routed through
// faultnet proxies and abused mid-workload: one direction blackholed,
// connections flapped with RSTs, the link slowed to a trickle, then
// healed. A partitioned-then-healed 2-shard tier must report exactly
// the fault-free match set, coverage, and matcher stats on all four
// case studies, with the stall surfacing loudly while it lasts (a
// /readyz 503 naming the stalled peer; WedgeErrors from the merge that
// a wait-and-retry caller absorbs). An unhealed partition must produce
// a named wedge diagnosis within the configured bound — never an
// indefinite hang.

import (
	"errors"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"ocep"
	"ocep/internal/faultnet"
	"ocep/internal/proctest"
	"ocep/internal/shard"
)

// chaosTier is a 2-shard poetd tier whose cross-shard and monitor links
// all pass through fault proxies. Reporter (ingest) links stay direct:
// the faults under test are the tier's internal dependencies.
type chaosTier struct {
	addr0, addr1 string          // direct shard protocol addresses
	m0, m1       string          // metrics/health listeners
	px0, px1     *faultnet.Proxy // peer export links toward shard 0 / shard 1
	mpx0, mpx1   *faultnet.Proxy // merged-monitor links toward shard 0 / shard 1
	s0, s1       *exec.Cmd
	out          *proctest.SyncBuffer
}

// monitorSpec is the merged-monitor tier spec routed through the fault
// proxies.
func (ct *chaosTier) monitorSpec() string { return ct.mpx0.Addr() + ";" + ct.mpx1.Addr() }

func (ct *chaosTier) readyz(shardID int) string {
	m := ct.m0
	if shardID == 1 {
		m = ct.m1
	}
	return "http://" + m + "/readyz"
}

// startChaosTier launches both shards. Each shard's -peers spec routes
// the link toward its peer through a proxy (its own entry stays its
// direct address — a shard never dials itself), so one proxy fault
// partitions exactly one direction of the exchange.
func startChaosTier(t *testing.T, poetd string, extra ...string) *chaosTier {
	t.Helper()
	ct := &chaosTier{
		addr0: proctest.FreePort(t), addr1: proctest.FreePort(t),
		m0: proctest.FreePort(t), m1: proctest.FreePort(t),
		out: &proctest.SyncBuffer{},
	}
	var err error
	for _, p := range []struct {
		dst    **faultnet.Proxy
		target string
	}{
		{&ct.px0, ct.addr0}, {&ct.px1, ct.addr1},
		{&ct.mpx0, ct.addr0}, {&ct.mpx1, ct.addr1},
	} {
		if *p.dst, err = faultnet.Listen(p.target); err != nil {
			t.Fatal(err)
		}
		proxy := *p.dst
		t.Cleanup(func() { _ = proxy.Close() })
	}
	spec0 := ct.addr0 + ";" + ct.px1.Addr()
	spec1 := ct.px0.Addr() + ";" + ct.addr1
	ct.s0 = startPoetdShard(t, poetd, ct.addr0, ct.m0, 0, spec0, ct.out, extra...)
	t.Cleanup(func() { proctest.KillIfAlive(ct.s0) })
	ct.s1 = startPoetdShard(t, poetd, ct.addr1, ct.m1, 1, spec1, ct.out, extra...)
	t.Cleanup(func() { proctest.KillIfAlive(ct.s1) })
	return ct
}

// wedgeRetrySource is the wait-and-retry caller of the merge: each
// WedgeError is counted and Next simply retried (the merge waits a
// fresh bound per call), so a transient stall costs diagnoses, not the
// stream. Terminal all-streams-ended wedges pass through.
type wedgeRetrySource struct {
	m *shard.MergedClient

	mu      sync.Mutex
	retries int
}

func (r *wedgeRetrySource) Next() (*ocep.Event, error) {
	for {
		e, err := r.m.Next()
		var w *shard.WedgeError
		if err != nil && errors.As(err, &w) && !w.StreamsEnded {
			r.mu.Lock()
			r.retries++
			r.mu.Unlock()
			continue
		}
		return e, err
	}
}

func (r *wedgeRetrySource) TraceName(tr ocep.TraceID) (string, bool) { return r.m.TraceName(tr) }

func (r *wedgeRetrySource) Retries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retries
}

// TestShardChaosPartitionHealsToCleanRun is the healing differential on
// all four case studies: mid-workload, the shard-1→shard-0 export
// direction and the shard-0 monitor stream are blackholed (the
// asymmetric partition a real network produces), the stall is verified
// loud — shard 0's /readyz flips 503 naming peer 1, the merge reports
// wedges that the wait-and-retry consumer absorbs — then the partition
// heals, every proxied link is flapped with RSTs and slowed to a
// trickle, and the tier must still reproduce the fault-free match set,
// coverage, and matcher stats exactly.
func TestShardChaosPartitionHealsToCleanRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping process-level shard chaos suite")
	}
	poetd := proctest.BuildTool(t, "poetd")
	for _, tc := range failoverCases() {
		t.Run(tc.name, func(t *testing.T) {
			sink := &captureSink{}
			if err := tc.generate(sink); err != nil {
				t.Fatal(err)
			}
			events := sink.events
			if len(events) < 100 {
				t.Fatalf("workload too small (%d events) for a meaningful chaos differential", len(events))
			}
			cleanMatches, cleanCov, cleanStats := runCleanBaselineStats(t, tc.pattern, events)
			if len(cleanMatches) == 0 {
				t.Fatal("single-collector run reported no matches; the differential comparison is vacuous")
			}

			ct := startChaosTier(t, poetd, "-peer-stall-timeout", "250ms")

			// Reporters dial the shards directly: ingest is not under test.
			reporters := make(map[string]*ocep.Reporter, 2)
			tier := make(map[string]shard.TraceReporter[ocep.RawEvent], 2)
			for _, p := range []string{ct.addr0, ct.addr1} {
				rep, err := ocep.DialReporter(p,
					ocep.WithReporterBackoff(5*time.Millisecond, 200*time.Millisecond),
					ocep.WithReporterHeartbeat(20*time.Millisecond),
					ocep.WithReporterReconnect(60*time.Second),
					ocep.WithReporterLog(t.Logf))
				if err != nil {
					t.Fatal(err)
				}
				defer rep.Close()
				reporters[p] = rep
				tier[p] = rep
			}
			router, err := shard.NewRouter(tier, func(e ocep.RawEvent) string { return e.Trace })
			if err != nil {
				t.Fatal(err)
			}

			reg := ocep.NewRegistry()
			merged, err := shard.DialMergedMonitor(ct.monitorSpec(),
				[]shard.MergeOption{
					shard.WithWedgeTimeout(300 * time.Millisecond),
					shard.WithMergeMetrics(reg),
					shard.WithMergeLog(t.Logf),
				},
				ocep.WithMonitorBackoff(5*time.Millisecond, 200*time.Millisecond),
				ocep.WithMonitorReconnect(60*time.Second),
				ocep.WithMonitorLog(t.Logf))
			if err != nil {
				t.Fatal(err)
			}
			defer merged.Close()
			src := &wedgeRetrySource{m: merged}

			var mu sync.Mutex
			var matches []ocep.Match
			mon, err := ocep.NewMonitor(tc.pattern,
				ocep.WithReportAll(),
				ocep.WithMetrics(reg),
				ocep.WithMatchHandler(func(m ocep.Match) {
					mu.Lock()
					matches = append(matches, m)
					mu.Unlock()
				}))
			if err != nil {
				t.Fatal(err)
			}
			runDone := make(chan error, 1)
			go func() { runDone <- mon.Run(src) }()

			flushAll := func(stage string) {
				for _, rep := range reporters {
					if err := rep.Flush(); err != nil {
						t.Fatalf("flush %s: %v", stage, err)
					}
				}
			}

			partition := func() {
				flushAll("before partition")
				// One-directional partition: shard 1's exports stop reaching
				// shard 0, and shard 0's monitor stream stops reaching the
				// merge, while the reverse directions stay up.
				ct.px1.SetBlackholeDir(faultnet.ServerToClient, true)
				ct.mpx0.SetBlackholeDir(faultnet.ServerToClient, true)
				// The stall must be loud, not silent: shard 0's readiness
				// flips 503 naming the stalled peer by ID...
				body := proctest.WaitForStatus(t, ct.readyz(0), 503)
				if !strings.Contains(body, "peer 1") || !strings.Contains(body, "shard-peers") {
					t.Fatalf("503 readyz body does not name the stalled peer:\n%s", body)
				}
				// ...with the per-peer info line present even in failure.
				if !strings.Contains(body, "shard-peer-1:") {
					t.Fatalf("readyz body lost the per-peer info line:\n%s", body)
				}
			}
			heal := func() {
				// Heal the partition, then keep abusing the links: flap every
				// proxied connection with a mid-stream RST, and slow the
				// monitor streams to a trickle (latency + 64-byte chunks) for
				// the rest of the workload.
				ct.px1.SetBlackholeDir(faultnet.ServerToClient, false)
				ct.mpx0.SetBlackholeDir(faultnet.ServerToClient, false)
				for _, p := range []*faultnet.Proxy{ct.px0, ct.px1, ct.mpx0, ct.mpx1} {
					p.CutAll()
				}
				for _, p := range []*faultnet.Proxy{ct.mpx0, ct.mpx1} {
					p.SetLatencyDir(faultnet.ServerToClient, time.Millisecond)
					p.SetChunk(64, 50*time.Microsecond)
				}
			}

			for i, e := range events {
				switch i {
				case len(events) / 3:
					partition()
				case 2 * len(events) / 3:
					heal()
				}
				if err := router.Report(e); err != nil {
					t.Fatalf("route event %d: %v", i, err)
				}
			}
			flushAll("at end of stream")
			// Let the tail of the stream drain at full speed.
			for _, p := range []*faultnet.Proxy{ct.mpx0, ct.mpx1} {
				p.SetLatency(0)
				p.SetChunk(0, 0)
			}
			waitCounter(t, "monitor to consume the full merged stream",
				reg.FindCounter("ocep_monitor_events_total"), int64(len(events)))

			// The healed tier is ready again, and the merge accounted the
			// stall without ever degrading: events were held, diagnosed,
			// retried — never reordered or waived.
			proctest.WaitForStatus(t, ct.readyz(0), 200)
			if st := merged.MergeStats(); st.Incomplete != 0 || st.ShardsLost != 0 {
				t.Fatalf("healed run must not degrade: %+v", st)
			}

			t.Cleanup(func() {
				select {
				case err := <-runDone:
					if err != nil {
						t.Errorf("monitor run over the chaos tier: %v", err)
					}
				case <-time.After(15 * time.Second):
					t.Error("monitor run never ended after the tier shut down")
				}
			})

			for _, s := range []*exec.Cmd{ct.s0, ct.s1} {
				if err := s.Process.Signal(syscall.SIGINT); err != nil {
					t.Fatal(err)
				}
			}
			for _, s := range []*exec.Cmd{ct.s0, ct.s1} {
				if err := s.Wait(); err != nil {
					t.Fatalf("shard clean shutdown: %v\noutput:\n%s", err, ct.out.String())
				}
			}

			name := func(tr ocep.TraceID) string {
				n, _ := merged.TraceName(tr)
				return n
			}
			mu.Lock()
			gotMatches, gotCov, gotStats := matchSignatures(matches, name), coverageSignatures(mon.Coverage(), name), mon.Stats()
			mu.Unlock()
			compareDifferential(t, "partitioned-then-healed", cleanMatches, cleanCov, cleanStats, gotMatches, gotCov, gotStats)
		})
	}
}

// TestShardChaosUnhealedPartitionWedges pins msgrace's receiving rank
// to shard 0 and its senders to shard 1, then blackholes shard 1's
// monitor stream forever (and the peer export link toward shard 1, so
// the shard-level watchdog fires too). Shard 0's stream keeps flowing
// — full of receives whose senders' clocks shard 1 will never emit —
// so the merge queues them blocked. The run must end with a structured
// WedgeError naming shard 1 and the blocking (trace, clock) frontier
// entry within the configured bound — never hang.
func TestShardChaosUnhealedPartitionWedges(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping process-level shard chaos suite")
	}
	poetd := proctest.BuildTool(t, "poetd")
	tc := failoverCases()[0] // msgrace: the densest cross-trace messaging

	sink := &captureSink{}
	if err := tc.generate(sink); err != nil {
		t.Fatal(err)
	}
	events := sink.events
	ct := startChaosTier(t, poetd, "-peer-stall-timeout", "250ms")

	merged, err := shard.DialMergedMonitor(ct.monitorSpec(),
		[]shard.MergeOption{
			shard.WithWedgeTimeout(time.Second),
			shard.WithMergeLog(t.Logf),
		},
		ocep.WithMonitorBackoff(5*time.Millisecond, 200*time.Millisecond),
		ocep.WithMonitorReconnect(60*time.Second),
		ocep.WithMonitorLog(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer merged.Close()

	// The unhealed partition, one-directional, applied after the merged
	// monitor's handshakes so the established streams stall mid-flight:
	// shard 0's exports never reach shard 1's follower (watchdog food),
	// and shard 1's monitor stream never reaches the merge (wedge food).
	// The shard1→shard0 export link stays up so shard 0 can release its
	// receives into the stream the merge *can* read.
	ct.px0.SetBlackholeDir(faultnet.ServerToClient, true)
	ct.mpx1.SetBlackholeDir(faultnet.ServerToClient, true)

	reporters := make(map[string]*ocep.Reporter, 2)
	for _, p := range []string{ct.addr0, ct.addr1} {
		rep, err := ocep.DialReporter(p,
			ocep.WithReporterBackoff(5*time.Millisecond, 200*time.Millisecond),
			ocep.WithReporterHeartbeat(20*time.Millisecond),
			ocep.WithReporterReconnect(60*time.Second),
			ocep.WithReporterLog(t.Logf))
		if err != nil {
			t.Fatal(err)
		}
		defer rep.Close()
		reporters[p] = rep
	}
	// Deterministic placement instead of the rendezvous router: the
	// receiving rank p0 on shard 0, every sending rank on shard 1, so
	// the blocked cross-shard dependency's direction is known up front.
	for i, e := range events {
		rep := reporters[ct.addr1]
		if e.Trace == "p0" {
			rep = reporters[ct.addr0]
		}
		if err := rep.Report(e); err != nil {
			t.Fatalf("report event %d: %v", i, err)
		}
	}
	for _, rep := range reporters {
		if err := rep.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
	}

	mon, err := ocep.NewMonitor(tc.pattern)
	if err != nil {
		t.Fatal(err)
	}

	// Fail-fast caller: the first WedgeError ends the run. It must
	// arrive within the bound plus stream latency, not "eventually".
	start := time.Now()
	runDone := make(chan error, 1)
	go func() { runDone <- mon.Run(merged) }()
	var runErr error
	select {
	case runErr = <-runDone:
	case <-time.After(30 * time.Second):
		t.Fatal("wedged merge never surfaced an error: the indefinite hang this PR exists to prevent")
	}
	elapsed := time.Since(start)

	var w *shard.WedgeError
	if !errors.As(runErr, &w) {
		t.Fatalf("run over an unhealed partition = %v, want a *shard.WedgeError", runErr)
	}
	if w.StreamsEnded {
		t.Fatalf("live partition diagnosed as an ended-streams wedge: %v", w)
	}
	if w.Shard != 1 {
		t.Fatalf("wedge names shard %d, want 1 (the blackholed stream): %v", w.Shard, w)
	}
	if int(w.Trace)%2 != 1 {
		t.Fatalf("blocking frontier trace %d is not homed on shard 1: %v", w.Trace, w)
	}
	if w.Need <= w.Have {
		t.Fatalf("blocking frontier entry not ahead of emission (need %d, have %d): %v", w.Need, w.Have, w)
	}
	if len(w.QueueDepths) != 2 || w.QueueDepths[0] == 0 {
		t.Fatalf("queue depths %v do not show shard 0's blocked backlog: %v", w.QueueDepths, w)
	}
	if w.Waited < time.Second {
		t.Fatalf("Waited = %v, want >= the 1s bound", w.Waited)
	}
	// "Within the bound": one wedge bound plus generous slack for
	// process startup and stream latency — nowhere near the 30s hang
	// backstop above.
	if elapsed > 20*time.Second {
		t.Fatalf("diagnosis took %v; the bound is 1s", elapsed)
	}
	if !strings.Contains(runErr.Error(), "shard 1") {
		t.Fatalf("diagnosis does not name the stalled shard: %v", runErr)
	}

	// The shard-level watchdog agrees: shard 1's export follower has
	// heard nothing from shard 0 past the stall bound.
	body := proctest.WaitForStatus(t, ct.readyz(1), 503)
	if !strings.Contains(body, "peer 0") {
		t.Fatalf("shard 1 readyz does not name peer 0:\n%s", body)
	}
	if !strings.Contains(body, "receives held") {
		t.Fatalf("shard 1 readyz does not report its held-event debt:\n%s", body)
	}
}
