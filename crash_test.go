package ocep_test

// Crash-recovery differential test: a monitored workload during which a
// real poetd child process is SIGKILLed and restarted against the same
// data directory several times mid-stream must report exactly the match
// set and coverage of an uninterrupted in-process run. This is the
// end-to-end proof that the durability subsystem (WAL + snapshots +
// recovery) composes with the fault-tolerant wire layer: under
// `-fsync always` no acknowledged event is ever lost, the reporter's
// retransmitted suffix lands as idempotent no-ops against the recovered
// ack watermarks, and the monitor's resume offset stays valid against
// the recovered stream.

import (
	"os/exec"
	"sync"
	"syscall"
	"testing"
	"time"

	"ocep"
	"ocep/internal/proctest"
	"ocep/internal/workload"
)

// startPoetd launches a durable poetd child and waits until it accepts
// connections (after a restart, that means recovery has finished).
func startPoetd(t *testing.T, bin, addr, dataDir string, out *proctest.SyncBuffer) *exec.Cmd {
	t.Helper()
	return proctest.StartServer(t, bin, out, addr,
		"-listen", addr,
		"-data-dir", dataDir,
		"-fsync", "always",
		"-snapshot-every", "64",
		"-ack-interval", "5ms",
		"-heartbeat", "25ms",
		"-quiet")
}

func TestCrashKilledPoetdMatchesCrashFreeRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping process-killing soak")
	}
	poetd := proctest.BuildTool(t, "poetd")
	addr := proctest.FreePort(t)
	dataDir := t.TempDir()

	// One captured workload drives both runs.
	sink := &captureSink{}
	if _, err := workload.GenMsgRace(workload.MsgRaceConfig{Ranks: 4, Waves: 30, Sink: sink}); err != nil {
		t.Fatal(err)
	}
	events := sink.events
	if len(events) < 100 {
		t.Fatalf("workload too small (%d events) for a meaningful kill schedule", len(events))
	}
	patternSrc := workload.MsgRacePattern()
	cleanMatches, cleanCov := runCleanBaseline(t, patternSrc, events)
	if len(cleanMatches) == 0 {
		t.Fatal("crash-free run reported no matches; the differential comparison is vacuous")
	}

	out := &proctest.SyncBuffer{}
	daemon := startPoetd(t, poetd, addr, dataDir, out)
	defer func() { proctest.KillIfAlive(daemon) }()

	rep, err := ocep.DialReporter(addr,
		ocep.WithReporterBackoff(5*time.Millisecond, 200*time.Millisecond),
		ocep.WithReporterHeartbeat(20*time.Millisecond),
		ocep.WithReporterReconnect(60*time.Second),
		ocep.WithReporterLog(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	cli, err := ocep.DialMonitor(addr,
		ocep.WithMonitorBackoff(5*time.Millisecond, 200*time.Millisecond),
		ocep.WithMonitorReconnect(60*time.Second),
		ocep.WithMonitorLog(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	var mu sync.Mutex
	var matches []ocep.Match
	reg := ocep.NewRegistry()
	mon, err := ocep.NewMonitor(patternSrc,
		ocep.WithReportAll(),
		ocep.WithMetrics(reg),
		ocep.WithMatchHandler(func(m ocep.Match) {
			mu.Lock()
			matches = append(matches, m)
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() { runDone <- mon.Run(cli) }()

	// SIGKILL the daemon at three points mid-stream and restart it
	// against the same data directory. The reporter and monitor are never
	// told: their reconnect loops must ride out each outage on their own.
	killAt := map[int]bool{len(events) / 4: true, len(events) / 2: true, 3 * len(events) / 4: true}
	kills := 0
	for i, e := range events {
		if killAt[i] {
			if err := daemon.Process.Signal(syscall.SIGKILL); err != nil {
				t.Fatalf("kill %d: %v", kills, err)
			}
			_ = daemon.Wait()
			kills++
			daemon = startPoetd(t, poetd, addr, dataDir, out)
		}
		if err := rep.Report(e); err != nil {
			t.Fatalf("report event %d: %v", i, err)
		}
	}
	if kills < 3 {
		t.Fatalf("only %d kills landed; the acceptance criterion wants >= 3", kills)
	}
	if err := rep.Flush(); err != nil {
		t.Fatalf("flush after %d kills: %v", kills, err)
	}
	waitCounter(t, "monitor to consume the full recovered stream",
		reg.FindCounter("ocep_monitor_events_total"), int64(len(events)))

	// Clean shutdown of the final incarnation: SIGTERM snapshots, sends
	// End to the monitor, and Run returns nil.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := daemon.Wait(); err != nil {
		t.Fatalf("poetd clean shutdown: %v\noutput:\n%s", err, out.String())
	}
	if err := <-runDone; err != nil {
		t.Fatalf("monitor run across %d crashes: %v", kills, err)
	}

	repStats, monStats := rep.Stats(), cli.Stats()
	t.Logf("crash run: %d kills, reporter %+v, monitor %+v", kills, repStats, monStats)
	if monStats.Received != len(events) {
		t.Fatalf("monitor received %d events, want exactly %d (no loss, no duplication)", monStats.Received, len(events))
	}
	if repStats.Reconnects == 0 || monStats.Reconnects == 0 {
		t.Fatal("no session ever reconnected; the kills proved nothing")
	}

	name := func(tr ocep.TraceID) string {
		n, _ := cli.TraceName(tr)
		return n
	}
	crashMatches := matchSignatures(matches, name)
	crashCov := coverageSignatures(mon.Coverage(), name)
	if !equalStrings(cleanMatches, crashMatches) {
		t.Errorf("match sets differ:\ncrash-free (%d): %v\ncrash-killed (%d): %v",
			len(cleanMatches), cleanMatches, len(crashMatches), crashMatches)
	}
	if !equalStrings(cleanCov, crashCov) {
		t.Errorf("coverage differs:\ncrash-free: %v\ncrash-killed: %v", cleanCov, crashCov)
	}
}
