// Command ocepbench reproduces the evaluation of the OCEP paper: for
// every figure and table in Section V it generates the corresponding
// case-study workload, replays the collected event stream through the
// matcher with per-event timing, and prints the same rows/series the
// paper reports.
//
// Usage:
//
//	ocepbench -all                      # everything
//	ocepbench -fig 6                    # one figure (3, 6, 7, 8, 9, 10)
//	ocepbench -completeness             # Section V-D completeness table
//	ocepbench -baseline                 # graph/race-checker comparisons
//	ocepbench -ablation                 # matcher-variant ablations
//	ocepbench -window                   # sliding-window omission study
//	ocepbench -scaling                  # trace-isolation scaling study
//	ocepbench -delivery                 # sync vs async monitor fan-out
//	ocepbench -durability               # fsync-policy cost + recovery time
//	ocepbench -telemetry                # metrics-overhead study + sample scrape
//	ocepbench -governance               # search budgets + bounded-memory soak
//	ocepbench -patternscale             # compiled dispatch vs interpreted fan-out
//	ocepbench -tracescale               # dense vs delta/sparse timestamps at many traces
//	ocepbench -shardscale               # ingest throughput across 1/2/4-shard collector tiers
//	ocepbench -monitors 8               # fan-out width for -delivery
//	ocepbench -events 1000000           # events per data point
//
// Absolute numbers depend on the host; the shapes (which case is
// slowest, how cost scales with traces, who wins against the baselines)
// are the reproduction target. See EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"ocep/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "ocepbench: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		fig          = flag.Int("fig", 0, "reproduce one figure (3, 6, 7, 8, 9, 10)")
		all          = flag.Bool("all", false, "run every experiment")
		completeness = flag.Bool("completeness", false, "completeness and soundness table")
		baselineCmp  = flag.Bool("baseline", false, "baseline comparisons")
		ablation     = flag.Bool("ablation", false, "matcher-variant ablations")
		window       = flag.Bool("window", false, "sliding-window omission study")
		scaling      = flag.Bool("scaling", false, "trace-isolation scaling study")
		latticeCmp   = flag.Bool("lattice", false, "global-state-lattice vs OCEP motivation study")
		delivery     = flag.Bool("delivery", false, "sync vs async monitor fan-out throughput")
		durability   = flag.Bool("durability", false, "WAL fsync-policy ingestion cost and crash/snapshot recovery time")
		telemetry    = flag.Bool("telemetry", false, "metrics overhead (instrumented vs disabled pipeline) and a sample registry dump")
		governance   = flag.Bool("governance", false, "resource governance: adversarial-trigger budgets and bounded-memory soak")
		patternscale = flag.Bool("patternscale", false, "attached-pattern scaling: compiled class-indexed dispatch vs interpreted fan-out")
		tracescale   = flag.Bool("tracescale", false, "trace-count scaling: dense vs delta wire clocks and dense vs sparse in-memory timestamps")
		shardscale   = flag.Bool("shardscale", false, "shard-count scaling: the same workload through 1/2/4-shard collector tiers over real TCP")
		monitors     = flag.Int("monitors", 8, "concurrent monitors for -delivery")
		events       = flag.Int("events", 100_000, "target events per data point (paper: >1e6)")
		seed         = flag.Int64("seed", 1, "workload seed")
		cycleLen     = flag.Int("cycle", 3, "deadlock cycle length")
	)
	flag.Parse()

	cfg := bench.FigureConfig{TargetEvents: *events, Seed: *seed, CycleLen: *cycleLen}
	out := os.Stdout
	any := false

	figures := map[int]func() error{
		3:  func() error { return bench.Figure3(out) },
		6:  func() error { return bench.FigureBoxplots(out, bench.CaseDeadlock, cfg) },
		7:  func() error { return bench.FigureBoxplots(out, bench.CaseMsgRace, cfg) },
		8:  func() error { return bench.FigureBoxplots(out, bench.CaseAtomicity, cfg) },
		9:  func() error { return bench.FigureBoxplots(out, bench.CaseOrdering, cfg) },
		10: func() error { return bench.Figure10(out, cfg) },
	}

	if *fig != 0 {
		f, ok := figures[*fig]
		if !ok {
			return fmt.Errorf("unknown figure %d (have 3, 6, 7, 8, 9, 10)", *fig)
		}
		any = true
		if err := f(); err != nil {
			return err
		}
	}
	if *all {
		any = true
		for _, n := range []int{3, 6, 7, 8, 9, 10} {
			if err := figures[n](); err != nil {
				return err
			}
		}
		if err := bench.Completeness(out, cfg); err != nil {
			return err
		}
		if err := bench.BaselineDeadlock(out, cfg); err != nil {
			return err
		}
		if err := bench.BaselineRace(out, cfg); err != nil {
			return err
		}
		if err := bench.Ablation(out, cfg); err != nil {
			return err
		}
		if err := bench.WindowOmission(out, cfg); err != nil {
			return err
		}
		if err := bench.Scaling(out, cfg); err != nil {
			return err
		}
		if err := bench.LatticeComparison(out, cfg); err != nil {
			return err
		}
		if err := bench.Delivery(out, cfg, *monitors); err != nil {
			return err
		}
		if err := bench.Durability(out, cfg); err != nil {
			return err
		}
		if err := bench.Telemetry(out, cfg); err != nil {
			return err
		}
		if err := bench.Governance(out, cfg); err != nil {
			return err
		}
		if err := bench.PatternScale(out, cfg); err != nil {
			return err
		}
		if err := bench.TraceScale(out, cfg); err != nil {
			return err
		}
		if err := bench.ShardScale(out, cfg); err != nil {
			return err
		}
	}
	if *completeness && !*all {
		any = true
		if err := bench.Completeness(out, cfg); err != nil {
			return err
		}
	}
	if *baselineCmp && !*all {
		any = true
		if err := bench.BaselineDeadlock(out, cfg); err != nil {
			return err
		}
		if err := bench.BaselineRace(out, cfg); err != nil {
			return err
		}
	}
	if *ablation && !*all {
		any = true
		if err := bench.Ablation(out, cfg); err != nil {
			return err
		}
	}
	if *window && !*all {
		any = true
		if err := bench.WindowOmission(out, cfg); err != nil {
			return err
		}
	}
	if *scaling && !*all {
		any = true
		if err := bench.Scaling(out, cfg); err != nil {
			return err
		}
	}
	if *latticeCmp && !*all {
		any = true
		if err := bench.LatticeComparison(out, cfg); err != nil {
			return err
		}
	}
	if *delivery && !*all {
		any = true
		if err := bench.Delivery(out, cfg, *monitors); err != nil {
			return err
		}
	}
	if *durability && !*all {
		any = true
		if err := bench.Durability(out, cfg); err != nil {
			return err
		}
	}
	if *telemetry && !*all {
		any = true
		if err := bench.Telemetry(out, cfg); err != nil {
			return err
		}
	}
	if *governance && !*all {
		any = true
		if err := bench.Governance(out, cfg); err != nil {
			return err
		}
	}
	if *patternscale && !*all {
		any = true
		if err := bench.PatternScale(out, cfg); err != nil {
			return err
		}
	}
	if *tracescale && !*all {
		any = true
		if err := bench.TraceScale(out, cfg); err != nil {
			return err
		}
	}
	if *shardscale && !*all {
		any = true
		if err := bench.ShardScale(out, cfg); err != nil {
			return err
		}
	}
	if !any {
		flag.Usage()
		return fmt.Errorf("nothing to do: pass -all, -fig N, or an experiment flag")
	}
	return nil
}
