// Command poetd runs a standalone POET collector server: instrumented
// targets connect to report raw events, monitor clients (e.g. ocepmon)
// connect to receive the linearized, vector-timestamped event stream.
//
// Usage:
//
//	poetd [-listen addr] [-reload trace.poet] [-dump trace.poet]
//	      [-monitor-queue n] [-monitor-policy drop|block]
//	      [-ack-interval d] [-heartbeat d] [-quiet]
//
// With -dump, the delivered raw-event log is written to the given file
// on shutdown (SIGINT/SIGTERM), reusable later with -reload — POET's
// dump and reload features.
//
// Each monitor connection drains its own bounded delivery queue
// (-monitor-queue events deep). With -monitor-policy drop (the default)
// a monitor that overflows its queue is disconnected so it cannot stall
// the collector; with block, ingestion throttles to the slowest monitor
// and no monitor is ever disconnected for lagging.
//
// The wire layer is fault-tolerant (v2 protocol): target connections
// are acknowledged every -ack-interval so reporters can prune their
// retransmit buffers, idle monitor streams carry a keep-alive frame
// every -heartbeat, and a target silent for 8x the heartbeat interval
// (minimum 2s) is declared dead and its connection reclaimed.
// Reconnecting peers resume their sessions: reporters replay only what
// was never acknowledged, monitors continue from the exact event index
// they had reached.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ocep/internal/poet"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("poetd: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		listen    = flag.String("listen", "127.0.0.1:7524", "address to listen on")
		reload    = flag.String("reload", "", "trace file to replay into the collector at startup")
		dump      = flag.String("dump", "", "write the delivered raw-event log to this file on shutdown")
		monQueue  = flag.Int("monitor-queue", 0, "per-monitor delivery queue depth (0 = default 65536)")
		monPolicy = flag.String("monitor-policy", "drop", "full-queue policy: drop (disconnect laggards) or block (throttle ingestion)")
		ackEvery  = flag.Duration("ack-interval", poet.DefaultAckInterval, "cadence of ingestion acknowledgements to targets")
		heartbeat = flag.Duration("heartbeat", poet.DefaultHeartbeat, "idle keep-alive cadence on monitor streams; targets silent for 8x this (min 2s) are declared dead")
		quiet     = flag.Bool("quiet", false, "suppress per-connection diagnostics")
	)
	flag.Parse()

	collector := poet.NewCollector()
	if *dump != "" {
		collector.RetainLog()
	}
	if *reload != "" {
		n, err := collector.ReloadFile(*reload)
		if err != nil {
			return fmt.Errorf("reload: %w", err)
		}
		log.Printf("reloaded %d events from %s", n, *reload)
	}

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	server := poet.NewServer(collector, logf)
	switch *monPolicy {
	case "drop":
		server.SetMonitorQueue(*monQueue, poet.BackpressureDrop)
	case "block":
		server.SetMonitorQueue(*monQueue, poet.BackpressureBlock)
	default:
		return fmt.Errorf("unknown -monitor-policy %q (want drop or block)", *monPolicy)
	}
	// Dead-peer detection tracks the heartbeat cadence: a peer is given
	// eight missed heartbeats (but never less than 2s) before its
	// connection is reclaimed.
	peerTimeout := 8 * *heartbeat
	if peerTimeout < 2*time.Second {
		peerTimeout = 2 * time.Second
	}
	server.SetWireTiming(*ackEvery, *heartbeat, peerTimeout)
	addr, err := server.Listen(*listen)
	if err != nil {
		return err
	}
	log.Printf("listening on %s", addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down: %d events delivered, %d pending",
		collector.Delivered(), collector.Pending())
	if ws := server.WireStats(); ws.StaleEvents > 0 || ws.TargetResumes > 0 || ws.MonitorResumes > 0 {
		log.Printf("wire: %d stale retransmits absorbed, %d target resumes, %d monitor resumes",
			ws.StaleEvents, ws.TargetResumes, ws.MonitorResumes)
	}
	for _, ts := range collector.TraceStats() {
		log.Printf("  trace %-20s delivered=%d comm=%d buffered=%d",
			ts.Name, ts.Delivered, ts.Comm, ts.Buffered)
	}
	if err := server.Close(); err != nil {
		log.Printf("close: %v", err)
	}
	if *dump != "" {
		if err := collector.DumpFile(*dump); err != nil {
			return fmt.Errorf("dump: %w", err)
		}
		log.Printf("dumped trace to %s", *dump)
	}
	return nil
}
