// Command poetd runs a standalone POET collector server: instrumented
// targets connect to report raw events, monitor clients (e.g. ocepmon)
// connect to receive the linearized, vector-timestamped event stream.
//
// Usage:
//
//	poetd [-listen addr] [-reload trace.poet|datadir] [-dump trace.poet]
//	      [-data-dir dir] [-fsync always|interval|none]
//	      [-fsync-interval d] [-snapshot-every n]
//	      [-monitor-queue n] [-monitor-policy drop|block]
//	      [-ack-interval d] [-heartbeat d] [-metrics-addr addr] [-quiet]
//	      [-retain-events n] [-max-pending n] [-mem-limit bytes]
//	      [-sparse-clocks] [-follow primaryaddr] [-drain-timeout d]
//	      [-shard-id n -peers "s0a,s0b;s1;s2"]
//
// With -dump, the delivered raw-event log is written to the given file
// on shutdown (SIGINT/SIGTERM), reusable later with -reload — POET's
// dump and reload features. -reload also accepts a -data-dir directory,
// replaying its recovered state (snapshot plus write-ahead log) into a
// fresh collector.
//
// With -data-dir, the collector is crash-durable: every ingested event
// is write-ahead-logged to the directory (fsync policy selected by
// -fsync), a snapshot is written every -snapshot-every events (and on
// clean shutdown) after which the redundant log prefix is truncated,
// and a restart against the same directory recovers the collector —
// event store, vector clocks, ack watermarks, and monitor stream
// offsets — to the exact state peers expect, truncating the log at the
// first torn or corrupt record rather than refusing to start. Under
// -fsync always an acknowledged event is never lost, so reconnecting
// reporters and resuming monitors compose transparently with crash
// recovery.
//
// Each monitor connection drains its own bounded delivery queue
// (-monitor-queue events deep). With -monitor-policy drop (the default)
// a monitor that overflows its queue is disconnected so it cannot stall
// the collector; with block, ingestion throttles to the slowest monitor
// and no monitor is ever disconnected for lagging.
//
// The wire layer is fault-tolerant (v2 protocol): target connections
// are acknowledged every -ack-interval so reporters can prune their
// retransmit buffers, idle monitor streams carry a keep-alive frame
// every -heartbeat, and a target silent for 8x the heartbeat interval
// (minimum 2s) is declared dead and its connection reclaimed.
// Reconnecting peers resume their sessions: reporters replay only what
// was never acknowledged, monitors continue from the exact event index
// they had reached.
//
// With -metrics-addr, a second listener serves operational telemetry:
// /metrics (Prometheus text), /debug/vars (the same registry as JSON),
// /debug/pprof, and the /healthz + /readyz probe pair. The metrics
// listener is deliberately separate from -listen so scrapes never share
// a socket with the protocol stream, and it starts before crash
// recovery so orchestration can distinguish "recovering" (alive, not
// ready: /readyz answers 503) from "dead" (probe times out). /readyz
// also answers 503 while the server is shedding load.
//
// Resource governance: -retain-events bounds the collector's memory by
// evicting the oldest delivered events past the bound (incompatible
// with -dump and -data-dir, which need the full log); -max-pending caps
// the out-of-order events buffered per trace, shedding the excess back
// onto reporter buffers; -mem-limit sets a soft heap ceiling (bytes,
// with optional K/M/G suffix) — the Go runtime GC target is set to it,
// a sampler watches the heap, and each time usage crosses 85% of the
// ceiling the retention window is halved, trading history depth for a
// flat footprint. -mem-limit requires -retain-events as its starting
// window.
//
// High availability: with -follow, poetd starts as a warm standby of
// the primary at the given address — it listens, answers queries and
// probes, and tails the primary's replication stream into its own
// collector (and WAL, with -data-dir), but rejects reporter/monitor
// sessions with a retriable ack until promoted. Promotion happens when
// the primary drains cleanly, when it stays unreachable past the
// replication reconnect budget (-follow-reconnect), or on SIGUSR1
// (manual). Clients given a
// comma-separated endpoint pool ("primary:7524,standby:7524") fail over
// to the promoted standby and resume their sessions exactly — no event
// lost, duplicated, or reordered. The standby's /readyz answers 503
// ("standby") until promotion, and poet_replica_lag_events on the
// metrics listener tracks how far it trails the primary.
//
// Unless -retain-events is set (eviction is incompatible with replica
// resume), every poetd keeps the replication log and serves replica
// sessions, so a promoted standby can in turn be followed.
//
// Horizontal sharding: with -shard-id and -peers, this poetd is one
// shard of a collector tier. -peers names every shard in the tier,
// ';'-separated and ordered by shard ID; each entry may itself be a
// comma-separated failover pool for that shard (primary first). The
// daemon stripes its global trace IDs so they never collide with the
// other shards', tails every peer's cross-shard send-export stream
// (dialing through that peer's pool), and serves its own export stream
// to them, so receives whose matching send was reported to another
// shard still causally order. Peer followers always re-stream from
// record zero after a reconnect — duplicates are absorbed as idempotent
// no-ops — which is what makes a peer's crash, restart, or failover to
// its standby invisible here. A sharded standby (-follow plus -shard-id)
// defers its peer followers until it is promoted: until then the
// primary's replication stream is the only writer of its state.
// Sharding is incompatible with -retain-events and -reload.
//
// Shutdown: SIGTERM drains gracefully — new sessions are rejected,
// connected peers receive a drain notice (pooled clients fail over
// immediately), reporter acks keep flowing while targets flush, and
// after at most -drain-timeout the server closes with End frames.
// SIGINT skips the drain and closes at once.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ocep/internal/poet"
	"ocep/internal/shard"
	"ocep/internal/telemetry"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("poetd: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// breakerName renders a follower breaker state for probe bodies.
func breakerName(state int) string {
	switch state {
	case poet.BreakerOpen:
		return "open"
	case poet.BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

func run() error {
	var (
		listen    = flag.String("listen", "127.0.0.1:7524", "address to listen on")
		reload    = flag.String("reload", "", "trace file to replay into the collector at startup")
		dump      = flag.String("dump", "", "write the delivered raw-event log to this file on shutdown")
		monQueue  = flag.Int("monitor-queue", 0, "per-monitor delivery queue depth (0 = default 65536)")
		monPolicy = flag.String("monitor-policy", "drop", "full-queue policy: drop (disconnect laggards) or block (throttle ingestion)")
		ackEvery  = flag.Duration("ack-interval", poet.DefaultAckInterval, "cadence of ingestion acknowledgements to targets")
		heartbeat = flag.Duration("heartbeat", poet.DefaultHeartbeat, "idle keep-alive cadence on monitor streams; targets silent for 8x this (min 2s) are declared dead")
		metrics   = flag.String("metrics-addr", "", "address for the telemetry listener (/metrics, /debug/vars, /debug/pprof); empty disables it")
		quiet     = flag.Bool("quiet", false, "suppress per-connection diagnostics")

		dataDir   = flag.String("data-dir", "", "directory for the write-ahead log and snapshots; enables crash-durable operation and recovery on restart")
		fsyncMode = flag.String("fsync", "always", "WAL durability: always (fsync before acking), interval (periodic fsync), none (OS page cache only)")
		fsyncInt  = flag.Duration("fsync-interval", 100*time.Millisecond, "flush/fsync cadence for -fsync interval and none")
		snapEvery = flag.Int("snapshot-every", 0, "snapshot + WAL truncation every n ingested events (0 = default 8192, negative = only on shutdown)")

		retain     = flag.Int("retain-events", 0, "bound the delivered-event log: evict the oldest events past this count (0 = keep everything; incompatible with -dump and -data-dir)")
		maxPending = flag.Int("max-pending", 0, "cap the out-of-order events buffered per trace; excess reports are shed back onto reporter buffers (0 = unbounded)")
		memLimit   = flag.String("mem-limit", "", "soft heap ceiling in bytes (K/M/G suffixes accepted); halves -retain-events each time the heap crosses 85% of it")

		sparseClocks = flag.Bool("sparse-clocks", false, "stamp events with sparse (trace, count)-pair vector clocks: O(causal-past) memory per event instead of O(#traces), same causal order")

		follow       = flag.String("follow", "", "run as a warm standby replicating from the primary at this address; promoted when the primary drains or dies, or on SIGUSR1")
		followBudget = flag.Duration("follow-reconnect", 0, "cumulative backoff budget before an unreachable primary is declared dead and the standby promotes itself (0 = default 10s)")
		drainWait    = flag.Duration("drain-timeout", poet.DefaultDrainWait, "on SIGTERM, how long the graceful drain waits for targets to flush and replicas to catch up before closing")

		shardID   = flag.Int("shard-id", -1, "this daemon's 0-based shard ID within the -peers tier; -1 disables sharding")
		peers     = flag.String("peers", "", "the whole collector tier, ';'-separated and ordered by shard ID; each entry is that shard's comma-separated failover pool (required with -shard-id)")
		peerStall = flag.Duration("peer-stall-timeout", 10*time.Second, "declare a peer's export stream stalled after this long without a record, heartbeat, or successful handshake: /readyz answers 503 naming the peer and held-event debt (0 disables the watchdog)")
	)
	flag.Parse()

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	memCeiling, err := parseBytes(*memLimit)
	if err != nil {
		return fmt.Errorf("-mem-limit: %w", err)
	}
	if memCeiling > 0 && *retain <= 0 {
		return fmt.Errorf("-mem-limit needs -retain-events as its starting retention window")
	}
	if *retain > 0 && *dump != "" {
		return fmt.Errorf("-retain-events is incompatible with -dump (the dump needs the full delivered log)")
	}
	if *retain > 0 && *dataDir != "" {
		return fmt.Errorf("-retain-events is incompatible with -data-dir (snapshots need the full delivered log)")
	}
	if *follow != "" && *retain > 0 {
		return fmt.Errorf("-follow is incompatible with -retain-events (a standby's replication log needs the full record stream)")
	}
	if *follow != "" && *reload != "" {
		return fmt.Errorf("-follow is incompatible with -reload (the standby's state must be the primary's stream, nothing else)")
	}
	var shardPools []string
	if *shardID >= 0 {
		shardPools = shard.SplitSpec(*peers)
		if len(shardPools) == 0 {
			return fmt.Errorf("-shard-id needs -peers naming every shard in the tier")
		}
		if *shardID >= len(shardPools) {
			return fmt.Errorf("-shard-id %d out of range: -peers names %d shards", *shardID, len(shardPools))
		}
		if *reload != "" {
			return fmt.Errorf("-shard-id is incompatible with -reload (a reloaded trace is not striped for this tier)")
		}
		if *retain > 0 {
			return fmt.Errorf("-shard-id is incompatible with -retain-events (peer followers re-stream the export log from zero)")
		}
	} else if *peers != "" {
		return fmt.Errorf("-peers needs -shard-id")
	}

	collector := poet.NewCollector()
	if *sparseClocks {
		// Before recovery/reload: the representation must be fixed before
		// any event (replayed or live) is stamped.
		if err := collector.SetSparseClocks(true); err != nil {
			return fmt.Errorf("-sparse-clocks: %w", err)
		}
	}
	if *shardID >= 0 {
		// Before recovery: the striped trace-ID space must be fixed before
		// any event — replayed or live — is registered.
		if err := collector.EnableSharding(*shardID, len(shardPools)); err != nil {
			return fmt.Errorf("-shard-id: %w", err)
		}
	}
	if *dump != "" {
		// Enable retention before any event can arrive, so the shutdown
		// dump is complete. Dump refuses a late-enabled retention window
		// rather than silently writing a partial file.
		collector.RetainLog()
	}
	if *retain > 0 {
		if err := collector.SetRetention(*retain); err != nil {
			return fmt.Errorf("-retain-events: %w", err)
		}
	}
	if *maxPending > 0 {
		collector.SetAdmissionLimit(*maxPending)
	}
	if *retain == 0 {
		// Every non-evicting poetd captures the replication record stream
		// so warm standbys can attach — and so a promoted standby can in
		// turn be followed. Before OpenDurable/-reload: a replica resuming
		// from zero needs the stream complete from the first record.
		if err := collector.EnableReplicationLog(); err != nil {
			return fmt.Errorf("enabling replication log: %w", err)
		}
		// Withheld acks must still leave room for the empty frame to
		// heartbeat the reporter within its peer timeout.
		collector.SetReplicationAckWait(*heartbeat / 2)
	} else if *follow == "" {
		log.Printf("note: -retain-events disables the replication log; replica sessions will be rejected")
	}

	// The health/metrics listener starts before recovery: a poetd
	// replaying a large write-ahead log is alive but not ready, and
	// orchestration needs the probes to say so instead of timing out.
	health := telemetry.NewHealth()
	var ready atomic.Bool
	health.RegisterCheck("startup", func() error {
		if !ready.Load() {
			return fmt.Errorf("starting: recovery or reload still in progress")
		}
		return nil
	})
	reg := telemetry.NewRegistry()
	var metricsSrv *http.Server
	if *metrics != "" {
		mux := http.NewServeMux()
		mux.Handle("/", telemetry.Handler(reg))
		health.Mount(mux)
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			return fmt.Errorf("-metrics-addr: %w", err)
		}
		metricsSrv = &http.Server{Handler: mux}
		go func() {
			if err := metricsSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
				log.Printf("metrics listener: %v", err)
			}
		}()
		log.Printf("metrics on http://%s/metrics (probes: /healthz, /readyz)", ln.Addr())
	}

	var durable *poet.Durability
	if *dataDir != "" {
		policy, err := poet.ParseSyncPolicy(*fsyncMode)
		if err != nil {
			return fmt.Errorf("-fsync: %w", err)
		}
		durable, err = poet.OpenDurable(collector, poet.DurableOptions{
			Dir:           *dataDir,
			Fsync:         policy,
			FsyncInterval: *fsyncInt,
			SnapshotEvery: *snapEvery,
			Logf:          log.Printf,
		})
		if err != nil {
			return fmt.Errorf("opening data directory: %w", err)
		}
		rec := durable.Recovery()
		log.Printf("data dir %s: fsync=%s, recovered %d delivered + %d pending events in %v (%d WAL records discarded as corrupt)",
			*dataDir, policy, rec.Delivered, rec.Pending, rec.Elapsed.Round(time.Millisecond), rec.DiscardedRecords)
	}
	if *reload != "" {
		n, err := collector.ReloadFile(*reload)
		if err != nil {
			return fmt.Errorf("reload: %w", err)
		}
		log.Printf("reloaded %d events from %s", n, *reload)
	}
	server := poet.NewServer(collector, logf)
	switch *monPolicy {
	case "drop":
		server.SetMonitorQueue(*monQueue, poet.BackpressureDrop)
	case "block":
		server.SetMonitorQueue(*monQueue, poet.BackpressureBlock)
	default:
		return fmt.Errorf("unknown -monitor-policy %q (want drop or block)", *monPolicy)
	}
	// Dead-peer detection tracks the heartbeat cadence: a peer is given
	// eight missed heartbeats (but never less than 2s) before its
	// connection is reclaimed.
	peerTimeout := 8 * *heartbeat
	if peerTimeout < 2*time.Second {
		peerTimeout = 2 * time.Second
	}
	server.SetWireTiming(*ackEvery, *heartbeat, peerTimeout)

	// Instruments attach after recovery and reload so the counters
	// describe live traffic, not the replayed prefix, and before Listen
	// so every connection is counted from the first byte. The registry
	// was already being served; metrics appear on the next scrape.
	if *metrics != "" {
		collector.InstrumentMetrics(reg) // also instruments the attached durability
		server.InstrumentMetrics(reg)
		telemetry.RegisterRuntimeMetrics(reg)
	}
	// A server parked on overloaded reporters is alive but should stop
	// receiving new traffic from the balancer until the backlog drains.
	health.RegisterCheck("overload", func() error {
		if server.Shedding() {
			return fmt.Errorf("shedding load: collector above its -max-pending admission limit")
		}
		return nil
	})
	// An unpromoted standby and a draining server are both alive but
	// must not receive new sessions from the balancer.
	health.RegisterCheck("standby", func() error {
		if server.Standby() {
			return fmt.Errorf("standby: replicating from %s, not promoted", *follow)
		}
		return nil
	})
	health.RegisterCheck("draining", func() error {
		if server.Draining() {
			return fmt.Errorf("draining: shutting down, no new sessions")
		}
		return nil
	})

	stopSampler := startMemGovernor(collector, memCeiling, *retain)
	defer stopSampler()

	if *follow != "" {
		// Gate sessions before the listener opens: a client that races
		// the standby's startup must see a retriable rejection, never an
		// accepted session on unreplicated state.
		server.SetStandby(true)
	}
	addr, err := server.Listen(*listen)
	if err != nil {
		return err
	}
	ready.Store(true)
	log.Printf("listening on %s", addr)

	// startShardFollowers attaches the cross-shard exchange: one follower
	// per peer shard, each tailing that peer's export stream through its
	// failover pool. A standby defers this until promotion — until then
	// the primary's replication stream must be the only writer of its
	// state, or the standby's linearization could diverge from the
	// primary's.
	type shardPeer struct {
		id int
		f  *poet.ShardFollower
	}
	var shardFollowers []shardPeer
	startShardFollowers := func() {
		if *shardID < 0 || len(shardPools) < 2 || shardFollowers != nil {
			return
		}
		for i, p := range shardPools {
			if i == *shardID {
				continue
			}
			// The breaker keeps a daemon useful next to a dead peer: after
			// two exhausted reconnect budgets the follower stops burning
			// dial loops and probes every 5s until the peer returns.
			f, err := poet.FollowShardPeer(p, collector,
				poet.WithShardLog(logf),
				poet.WithShardBreaker(2, 5*time.Second))
			if err != nil {
				log.Printf("shard peer %d (%s): %v", i, p, err)
				continue
			}
			peer := shardPeer{id: i, f: f}
			shardFollowers = append(shardFollowers, peer)
			// Per-peer follower health on every /readyz body, even while
			// the probe passes: operators see lag and breaker state before
			// the stall threshold trips.
			health.RegisterInfo(fmt.Sprintf("shard-peer-%d", i), func() string {
				st := peer.f.Stats()
				return fmt.Sprintf("pool=%s connected=%v lag=%d reconnects=%d breaker=%s last-contact=%s",
					st.Peer, st.Connected, st.Lag, st.Reconnects, breakerName(st.BreakerState),
					st.SinceContact.Round(time.Millisecond))
			})
		}
		log.Printf("shard %d/%d: following %d peer export streams", *shardID, len(shardPools), len(shardFollowers))
		peersSnap := shardFollowers
		// The stall watchdog: a peer silent past -peer-stall-timeout means
		// this shard may be holding receives indefinitely, so the balancer
		// should stop routing new sessions here until the exchange heals.
		health.RegisterCheck("shard-peers", func() error {
			if *peerStall <= 0 {
				return nil
			}
			var stalled []string
			for _, sp := range peersSnap {
				if sp.f.Stalled(*peerStall) {
					st := sp.f.Stats()
					stalled = append(stalled, fmt.Sprintf("peer %d (%s) silent for %s, breaker=%s",
						sp.id, st.Peer, st.SinceContact.Round(time.Millisecond), breakerName(st.BreakerState)))
				}
			}
			if len(stalled) == 0 {
				return nil
			}
			ss := collector.ShardStats()
			return fmt.Errorf("export stream stalled past %v: %s; %d receives held (oldest %s)",
				*peerStall, strings.Join(stalled, "; "), ss.HeldEvents, ss.OldestHeld.Round(time.Millisecond))
		})
		health.RegisterInfo("shard-held", func() string {
			ss := collector.ShardStats()
			if ss.HeldEvents == 0 {
				return "0 receives held on the cross-shard exchange"
			}
			return fmt.Sprintf("%d receives held on the cross-shard exchange (oldest %s)",
				ss.HeldEvents, ss.OldestHeld.Round(time.Millisecond))
		})
		if *metrics != "" && len(shardFollowers) > 0 {
			followers := shardFollowers
			reg.GaugeFunc("poet_shard_peer_lag_records", "Cross-shard send records peers have exported that this shard has not yet applied, summed over all peers.", func() int64 {
				var lag int64
				for _, sp := range followers {
					lag += int64(sp.f.Stats().Lag)
				}
				return lag
			})
			reg.GaugeFunc("poet_shard_peer_reconnects", "Peer export-stream reconnects, summed over all peers.", func() int64 {
				var n int64
				for _, sp := range followers {
					n += int64(sp.f.Stats().Reconnects)
				}
				return n
			})
			reg.GaugeFunc("poet_shard_peer_breaker_state", "Worst circuit-breaker state over all peer followers (0 closed, 1 half-open, 2 open).", func() int64 {
				var worst int64
				for _, sp := range followers {
					if s := int64(sp.f.Stats().BreakerState); s > worst {
						worst = s
					}
				}
				return worst
			})
			reg.GaugeFunc("poet_shard_peer_stalled", "Peer export streams currently silent past -peer-stall-timeout.", func() int64 {
				var n int64
				for _, sp := range followers {
					if sp.f.Stalled(*peerStall) {
						n++
					}
				}
				return n
			})
			reg.GaugeFunc("poet_shard_peer_last_contact_ms", "Age in milliseconds of the stalest peer's last sign of life.", func() int64 {
				var worst time.Duration
				for _, sp := range followers {
					if s := sp.f.Stats().SinceContact; s > worst {
						worst = s
					}
				}
				return worst.Milliseconds()
			})
		}
	}
	if *follow == "" {
		startShardFollowers()
	}

	var rep *poet.Replicator
	if *follow != "" {
		repOpts := []poet.ReplicaOption{
			poet.WithReplicaLog(logf),
			poet.WithReplicaHeartbeat(*heartbeat),
		}
		if *followBudget > 0 {
			repOpts = append(repOpts, poet.WithReplicaReconnect(*followBudget))
		}
		rep, err = poet.FollowPrimary(*follow, collector, repOpts...)
		if err != nil {
			return fmt.Errorf("-follow: %w", err)
		}
		log.Printf("standby: replicating from %s (already applied %d events)", *follow, collector.IngestCount())
		if *metrics != "" {
			reg.GaugeFunc("poet_replica_lag_events", "Events the primary has ingested that this standby has not yet applied.", func() int64 {
				return int64(rep.Stats().Lag)
			})
		}
	}
	// repDone yields the replicator's completion channel, or a nil
	// channel (blocks forever) once following has ended.
	following := rep
	repDone := func() <-chan struct{} {
		if following != nil {
			return following.Done()
		}
		return nil
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM, syscall.SIGUSR1)
	drain := false
waitLoop:
	for {
		select {
		case s := <-sig:
			switch s {
			case syscall.SIGUSR1:
				if following != nil {
					log.Printf("SIGUSR1: detaching from primary for manual promotion")
					following.Stop()
					continue // promotion completes via Done below
				}
				log.Printf("SIGUSR1 ignored: not a standby")
				continue
			case syscall.SIGTERM:
				drain = true
			}
			break waitLoop
		case <-repDone():
			err := following.Err()
			st := following.Stats()
			following = nil
			switch {
			case err == nil, errors.Is(err, poet.ErrPrimaryDrained), errors.Is(err, poet.ErrStreamInterrupted):
				reason := "manual stop"
				if err != nil {
					reason = err.Error()
				}
				server.Promote()
				log.Printf("promoted (%s): %d events applied, %d replication reconnects", reason, st.Applied, st.Reconnects)
				// Only now may a sharded standby start exchanging with its
				// peers: the from-zero re-stream replays every cross-shard
				// record the old primary had applied, idempotently.
				startShardFollowers()
			default:
				return fmt.Errorf("replication from %s failed: %w", *follow, err)
			}
		}
	}
	if following != nil {
		// Shutting down while still a standby: detach cleanly.
		following.Stop()
		<-following.Done()
	}
	for _, sp := range shardFollowers {
		sp.f.Stop()
	}
	log.Printf("shutting down: %d events delivered, %d pending",
		collector.Delivered(), collector.Pending())
	if ss := collector.ShardStats(); ss.Enabled {
		log.Printf("shard %d/%d: %d home traces, %d send exports, %d remote sends applied",
			ss.ShardID, ss.NumShards, ss.HomeTraces, ss.Exports, ss.RemoteSends)
	}
	if ws := server.WireStats(); ws.StaleEvents > 0 || ws.TargetResumes > 0 || ws.MonitorResumes > 0 || ws.LoadSheds > 0 {
		log.Printf("wire: %d stale retransmits absorbed, %d target resumes, %d monitor resumes, %d load sheds",
			ws.StaleEvents, ws.TargetResumes, ws.MonitorResumes, ws.LoadSheds)
	}
	if ws := server.WireStats(); ws.ReplicaSessions > 0 || ws.ReplicaEvents > 0 {
		log.Printf("replication: %d replica sessions served, %d events streamed, final lag %d",
			ws.ReplicaSessions, ws.ReplicaEvents, ws.ReplicationLag)
	}
	if rs := collector.RetentionStats(); rs.Evicted > 0 {
		log.Printf("retention: evicted %d delivered events (%d released from the store), %d retained",
			rs.Evicted, rs.StoreCompacted, rs.Retained)
	}
	for _, ts := range collector.TraceStats() {
		log.Printf("  trace %-20s delivered=%d comm=%d buffered=%d",
			ts.Name, ts.Delivered, ts.Comm, ts.Buffered)
	}
	if drain {
		// SIGTERM: orderly drain — reject new sessions, notify connected
		// peers (pooled clients fail over at once), let targets flush and
		// replicas catch up, then close with End frames.
		if err := server.Drain(*drainWait); err != nil {
			log.Printf("drain: %v", err)
		}
	} else if err := server.Close(); err != nil {
		log.Printf("close: %v", err)
	}
	if metricsSrv != nil {
		_ = metricsSrv.Close()
	}
	if durable != nil {
		// Clean shutdown: final snapshot, WAL truncated, so the next start
		// recovers from the snapshot alone.
		if err := durable.Close(); err != nil {
			return fmt.Errorf("closing data directory: %w", err)
		}
		log.Printf("data dir %s: final snapshot written, WAL truncated", *dataDir)
	}
	if *dump != "" {
		if err := collector.DumpFile(*dump); err != nil {
			return fmt.Errorf("dump: %w", err)
		}
		log.Printf("dumped trace to %s", *dump)
	}
	return nil
}

// parseBytes parses a byte count with an optional K/M/G suffix
// (case-insensitive; "KiB"/"MB" style spellings accepted). Empty means
// 0 (disabled).
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	num := s
	var mult int64 = 1
	upper := strings.ToUpper(strings.TrimSuffix(strings.TrimSuffix(strings.ToUpper(s), "B"), "I"))
	for suffix, m := range map[string]int64{"K": 1 << 10, "M": 1 << 20, "G": 1 << 30} {
		if strings.HasSuffix(upper, suffix) {
			num = strings.TrimSuffix(upper, suffix)
			mult = m
			break
		}
	}
	if mult == 1 {
		num = upper
	}
	n, err := strconv.ParseInt(strings.TrimSpace(num), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("not a byte count: %q", s)
	}
	return n * mult, nil
}

// startMemGovernor enforces a soft heap ceiling: the runtime's GC
// target is set to it (so collection intensifies as the ceiling
// nears), and a sampler halves the collector's retention window each
// time the live heap crosses 85% of the ceiling — shedding history
// instead of growing without bound. Returns a stop func; a no-op when
// no ceiling is set.
func startMemGovernor(c *poet.Collector, ceiling int64, keep int) func() {
	if ceiling <= 0 {
		return func() {}
	}
	prev := debug.SetMemoryLimit(ceiling)
	stop := make(chan struct{})
	var once sync.Once
	go func() {
		const (
			pollEvery = 500 * time.Millisecond
			floor     = 256
		)
		trip := ceiling - ceiling/8 + ceiling/40 // ~85%
		t := time.NewTicker(pollEvery)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
			}
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if int64(ms.HeapAlloc) <= trip || keep <= floor {
				continue
			}
			keep /= 2
			if keep < floor {
				keep = floor
			}
			if err := c.SetRetention(keep); err != nil {
				log.Printf("mem governor: tightening retention: %v", err)
				return
			}
			log.Printf("mem governor: heap %d MiB over 85%% of the %d MiB ceiling; retention tightened to %d events",
				ms.HeapAlloc>>20, ceiling>>20, keep)
		}
	}()
	return func() {
		once.Do(func() {
			close(stop)
			debug.SetMemoryLimit(prev)
		})
	}
}
