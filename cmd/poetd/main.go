// Command poetd runs a standalone POET collector server: instrumented
// targets connect to report raw events, monitor clients (e.g. ocepmon)
// connect to receive the linearized, vector-timestamped event stream.
//
// Usage:
//
//	poetd [-listen addr] [-reload trace.poet|datadir] [-dump trace.poet]
//	      [-data-dir dir] [-fsync always|interval|none]
//	      [-fsync-interval d] [-snapshot-every n]
//	      [-monitor-queue n] [-monitor-policy drop|block]
//	      [-ack-interval d] [-heartbeat d] [-metrics-addr addr] [-quiet]
//
// With -dump, the delivered raw-event log is written to the given file
// on shutdown (SIGINT/SIGTERM), reusable later with -reload — POET's
// dump and reload features. -reload also accepts a -data-dir directory,
// replaying its recovered state (snapshot plus write-ahead log) into a
// fresh collector.
//
// With -data-dir, the collector is crash-durable: every ingested event
// is write-ahead-logged to the directory (fsync policy selected by
// -fsync), a snapshot is written every -snapshot-every events (and on
// clean shutdown) after which the redundant log prefix is truncated,
// and a restart against the same directory recovers the collector —
// event store, vector clocks, ack watermarks, and monitor stream
// offsets — to the exact state peers expect, truncating the log at the
// first torn or corrupt record rather than refusing to start. Under
// -fsync always an acknowledged event is never lost, so reconnecting
// reporters and resuming monitors compose transparently with crash
// recovery.
//
// Each monitor connection drains its own bounded delivery queue
// (-monitor-queue events deep). With -monitor-policy drop (the default)
// a monitor that overflows its queue is disconnected so it cannot stall
// the collector; with block, ingestion throttles to the slowest monitor
// and no monitor is ever disconnected for lagging.
//
// The wire layer is fault-tolerant (v2 protocol): target connections
// are acknowledged every -ack-interval so reporters can prune their
// retransmit buffers, idle monitor streams carry a keep-alive frame
// every -heartbeat, and a target silent for 8x the heartbeat interval
// (minimum 2s) is declared dead and its connection reclaimed.
// Reconnecting peers resume their sessions: reporters replay only what
// was never acknowledged, monitors continue from the exact event index
// they had reached.
//
// With -metrics-addr, a second listener serves operational telemetry:
// /metrics (Prometheus text), /debug/vars (the same registry as JSON)
// and /debug/pprof. The metrics listener is deliberately separate from
// -listen so scrapes never share a socket with the protocol stream.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ocep/internal/poet"
	"ocep/internal/telemetry"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("poetd: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		listen    = flag.String("listen", "127.0.0.1:7524", "address to listen on")
		reload    = flag.String("reload", "", "trace file to replay into the collector at startup")
		dump      = flag.String("dump", "", "write the delivered raw-event log to this file on shutdown")
		monQueue  = flag.Int("monitor-queue", 0, "per-monitor delivery queue depth (0 = default 65536)")
		monPolicy = flag.String("monitor-policy", "drop", "full-queue policy: drop (disconnect laggards) or block (throttle ingestion)")
		ackEvery  = flag.Duration("ack-interval", poet.DefaultAckInterval, "cadence of ingestion acknowledgements to targets")
		heartbeat = flag.Duration("heartbeat", poet.DefaultHeartbeat, "idle keep-alive cadence on monitor streams; targets silent for 8x this (min 2s) are declared dead")
		metrics   = flag.String("metrics-addr", "", "address for the telemetry listener (/metrics, /debug/vars, /debug/pprof); empty disables it")
		quiet     = flag.Bool("quiet", false, "suppress per-connection diagnostics")

		dataDir   = flag.String("data-dir", "", "directory for the write-ahead log and snapshots; enables crash-durable operation and recovery on restart")
		fsyncMode = flag.String("fsync", "always", "WAL durability: always (fsync before acking), interval (periodic fsync), none (OS page cache only)")
		fsyncInt  = flag.Duration("fsync-interval", 100*time.Millisecond, "flush/fsync cadence for -fsync interval and none")
		snapEvery = flag.Int("snapshot-every", 0, "snapshot + WAL truncation every n ingested events (0 = default 8192, negative = only on shutdown)")
	)
	flag.Parse()

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	collector := poet.NewCollector()
	if *dump != "" {
		// Enable retention before any event can arrive, so the shutdown
		// dump is complete. Dump refuses a late-enabled retention window
		// rather than silently writing a partial file.
		collector.RetainLog()
	}
	var durable *poet.Durability
	if *dataDir != "" {
		policy, err := poet.ParseSyncPolicy(*fsyncMode)
		if err != nil {
			return fmt.Errorf("-fsync: %w", err)
		}
		durable, err = poet.OpenDurable(collector, poet.DurableOptions{
			Dir:           *dataDir,
			Fsync:         policy,
			FsyncInterval: *fsyncInt,
			SnapshotEvery: *snapEvery,
			Logf:          log.Printf,
		})
		if err != nil {
			return fmt.Errorf("opening data directory: %w", err)
		}
		rec := durable.Recovery()
		log.Printf("data dir %s: fsync=%s, recovered %d delivered + %d pending events in %v (%d WAL records discarded as corrupt)",
			*dataDir, policy, rec.Delivered, rec.Pending, rec.Elapsed.Round(time.Millisecond), rec.DiscardedRecords)
	}
	if *reload != "" {
		n, err := collector.ReloadFile(*reload)
		if err != nil {
			return fmt.Errorf("reload: %w", err)
		}
		log.Printf("reloaded %d events from %s", n, *reload)
	}
	server := poet.NewServer(collector, logf)
	switch *monPolicy {
	case "drop":
		server.SetMonitorQueue(*monQueue, poet.BackpressureDrop)
	case "block":
		server.SetMonitorQueue(*monQueue, poet.BackpressureBlock)
	default:
		return fmt.Errorf("unknown -monitor-policy %q (want drop or block)", *monPolicy)
	}
	// Dead-peer detection tracks the heartbeat cadence: a peer is given
	// eight missed heartbeats (but never less than 2s) before its
	// connection is reclaimed.
	peerTimeout := 8 * *heartbeat
	if peerTimeout < 2*time.Second {
		peerTimeout = 2 * time.Second
	}
	server.SetWireTiming(*ackEvery, *heartbeat, peerTimeout)

	// Telemetry wires up after recovery and reload so the counters
	// describe live traffic, not the replayed prefix, and before Listen
	// so every connection is counted from the first byte.
	var metricsSrv *http.Server
	if *metrics != "" {
		reg := telemetry.NewRegistry()
		collector.InstrumentMetrics(reg) // also instruments the attached durability
		server.InstrumentMetrics(reg)
		telemetry.RegisterRuntimeMetrics(reg)
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			return fmt.Errorf("-metrics-addr: %w", err)
		}
		metricsSrv = &http.Server{Handler: telemetry.Handler(reg)}
		go func() {
			if err := metricsSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
				log.Printf("metrics listener: %v", err)
			}
		}()
		log.Printf("metrics on http://%s/metrics", ln.Addr())
	}

	addr, err := server.Listen(*listen)
	if err != nil {
		return err
	}
	log.Printf("listening on %s", addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down: %d events delivered, %d pending",
		collector.Delivered(), collector.Pending())
	if ws := server.WireStats(); ws.StaleEvents > 0 || ws.TargetResumes > 0 || ws.MonitorResumes > 0 {
		log.Printf("wire: %d stale retransmits absorbed, %d target resumes, %d monitor resumes",
			ws.StaleEvents, ws.TargetResumes, ws.MonitorResumes)
	}
	for _, ts := range collector.TraceStats() {
		log.Printf("  trace %-20s delivered=%d comm=%d buffered=%d",
			ts.Name, ts.Delivered, ts.Comm, ts.Buffered)
	}
	if err := server.Close(); err != nil {
		log.Printf("close: %v", err)
	}
	if metricsSrv != nil {
		_ = metricsSrv.Close()
	}
	if durable != nil {
		// Clean shutdown: final snapshot, WAL truncated, so the next start
		// recovers from the snapshot alone.
		if err := durable.Close(); err != nil {
			return fmt.Errorf("closing data directory: %w", err)
		}
		log.Printf("data dir %s: final snapshot written, WAL truncated", *dataDir)
	}
	if *dump != "" {
		if err := collector.DumpFile(*dump); err != nil {
			return fmt.Errorf("dump: %w", err)
		}
		log.Printf("dumped trace to %s", *dump)
	}
	return nil
}
