// Command ocepmon is the online OCEP monitor: it connects to a poetd
// server as a monitor client, receives the linearized event stream, and
// matches a causal event pattern, printing each reported match (the
// representative subset by default) as it is found.
//
// Usage:
//
//	ocepmon -pattern file.pat [-addr host:port] [-all] [-guarantee]
//	        [-stats] [-builtin name] [-reconnect d]
//	        [-max-steps n] [-deadline d] [-history-cap n]
//
// The governance flags bound the matcher's resources: -max-steps and
// -deadline cap the search work and wall-clock time per triggering
// event (an exhausted trigger aborts cleanly, reporting its partial
// results with Truncated set), and -history-cap bounds the per-leaf
// event histories with coverage-aware eviction, keeping a long-running
// monitor's footprint flat.
//
// The connection to poetd is fault-tolerant: if it dies mid-stream the
// client reconnects with exponential backoff and resumes from the exact
// event it had reached, so no match is lost or double-reported across
// the outage. -reconnect bounds the cumulative backoff spent per outage
// (default 30s; 0 disables reconnection and the first interruption ends
// the run with an error). A clean poetd shutdown ends the stream
// normally.
//
// -addr also accepts a comma-separated endpoint pool
// ("primary:7524,standby:7524") when poetd runs with a warm standby
// (-follow): the monitor connects to the first healthy endpoint, fails
// over on connection failures and drain notices, and resumes at its
// exact stream offset on the promoted standby — the match output is
// identical to a fault-free run.
//
// When -addr contains ';', it names a sharded collector tier (the same
// spec the shards themselves take as -peers: ';' separates shards in
// shard-ID order, ',' separates each shard's failover pool). The
// monitor dials every shard, merges their streams into one causally
// consistent linearization — a receive is never emitted before the
// cross-shard send it observed — and matches against that, so the
// output is identical to running the same workload through a single
// collector.
//
// Two flags govern how the merge behaves when a shard stalls:
// -wedge-timeout bounds how long the merged stream may make no progress
// before the run fails with a diagnosis naming the stalled shard and
// the blocking (trace, clock) frontier entry (default 0: wait forever,
// as a transient partition heals into a byte-identical run), and
// -degrade-after opts in to graceful degradation, declaring a shard
// lost after that long and matching the surviving streams with
// causally-incomplete events counted rather than hidden.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"ocep"
	"ocep/internal/shard"
	"ocep/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ocepmon: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// indent prefixes every line with two spaces.
func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "  " + l
	}
	return strings.Join(lines, "\n") + "\n"
}

func run() error {
	var (
		addr       = flag.String("addr", "127.0.0.1:7524", "poetd server address, a comma-separated failover pool (\"primary:7524,standby:7524\"), or a ';'-separated sharded tier (\"shard0;shard1,standby1\")")
		patFile    = flag.String("pattern", "", "pattern definition file")
		builtin    = flag.String("builtin", "", "use a built-in case-study pattern (deadlock2, deadlock3, race, atomicity, ordering)")
		reportAll  = flag.Bool("all", false, "report every complete match, not just the representative subset")
		guarantee  = flag.Bool("guarantee", false, "run pinned searches so the k*n subset guarantee is exact")
		printStats = flag.Bool("stats", false, "print matcher statistics when the stream ends")
		explain    = flag.Bool("explain", false, "print the causal evidence for each match")
		reconnect  = flag.Duration("reconnect", 30*time.Second, "cumulative backoff budget for resuming a dead connection (0 disables reconnection)")
		wedgeAfter = flag.Duration("wedge-timeout", 0, "sharded tier only: report a wedge (naming the stalled shard and blocking frontier entry) when the merge emits nothing for this long instead of waiting forever (0 = wait forever)")
		degrade    = flag.Duration("degrade-after", 0, "sharded tier only: declare a shard lost after this long without progress and keep matching the remaining streams, counting causally-incomplete events (0 = never degrade)")
		maxSteps   = flag.Int("max-steps", 0, "abort a trigger's search after n candidate steps (0 = unlimited)")
		deadline   = flag.Duration("deadline", 0, "abort a trigger's search after this wall-clock time (0 = none)")
		historyCap = flag.Int("history-cap", 0, "bound per-(leaf,trace) histories with coverage-aware eviction (0 = unbounded)")
	)
	flag.Parse()

	var src string
	switch {
	case *builtin != "":
		switch *builtin {
		case "deadlock2":
			src = workload.DeadlockPattern(2)
		case "deadlock3":
			src = workload.DeadlockPattern(3)
		case "race":
			src = workload.MsgRacePattern()
		case "atomicity":
			src = workload.AtomicityPattern()
		case "ordering":
			src = workload.OrderingPattern()
		default:
			return fmt.Errorf("unknown built-in %q", *builtin)
		}
	case *patFile != "":
		data, err := os.ReadFile(*patFile)
		if err != nil {
			return err
		}
		src = string(data)
	default:
		return fmt.Errorf("a pattern is required: -pattern file.pat or -builtin name")
	}

	// A ';' in -addr means a sharded tier: dial every shard and merge
	// their streams. Otherwise a single client (with an optional ','
	// failover pool) is the stream.
	var client interface {
		ocep.EventSource
		Close() error
	}
	if strings.Contains(*addr, ";") {
		mopts := []shard.MergeOption{shard.WithMergeLog(log.Printf)}
		if *wedgeAfter > 0 {
			mopts = append(mopts, shard.WithWedgeTimeout(*wedgeAfter))
		}
		if *degrade > 0 {
			mopts = append(mopts, shard.WithDegradeAfter(*degrade))
		}
		merged, err := shard.DialMergedMonitor(*addr, mopts,
			ocep.WithMonitorReconnect(*reconnect),
			ocep.WithMonitorLog(log.Printf))
		if err != nil {
			return err
		}
		client = merged
	} else {
		single, err := ocep.DialMonitor(*addr,
			ocep.WithMonitorReconnect(*reconnect),
			ocep.WithMonitorLog(log.Printf))
		if err != nil {
			return err
		}
		client = single
	}
	defer client.Close()

	count := 0
	var mon *ocep.Monitor
	opts := []ocep.Option{ocep.WithMatchHandler(func(m ocep.Match) {
		count++
		fmt.Printf("match #%d:\n", count)
		if *explain {
			fmt.Print(indent(mon.Explain(m)))
			return
		}
		for _, e := range m.Events {
			name, _ := client.TraceName(e.ID.Trace)
			fmt.Printf("  %s on %s: type=%q text=%q vc=%s\n", e.ID, name, e.Type, e.Text, e.VC)
		}
		if len(m.Bindings) > 0 {
			var parts []string
			for k, v := range m.Bindings {
				parts = append(parts, fmt.Sprintf("$%s=%q", k, v))
			}
			fmt.Printf("  bindings: %s\n", strings.Join(parts, " "))
		}
	})}
	if *reportAll {
		opts = append(opts, ocep.WithReportAll())
	}
	if *guarantee {
		opts = append(opts, ocep.WithGuaranteedCoverage())
	}
	if *maxSteps > 0 {
		opts = append(opts, ocep.WithMaxTriggerSteps(*maxSteps))
	}
	if *deadline > 0 {
		opts = append(opts, ocep.WithTriggerDeadline(*deadline))
	}
	if *historyCap > 0 {
		opts = append(opts, ocep.WithHistoryCap(*historyCap))
	}
	var err2 error
	mon, err2 = ocep.NewMonitor(src, opts...)
	if err2 != nil {
		return err2
	}
	log.Printf("connected to %s; pattern length k=%d", *addr, mon.PatternLength())
	if err := mon.Run(client); err != nil {
		return err
	}
	log.Printf("stream ended: %d matches reported", count)
	if *printStats {
		s := mon.Stats()
		fmt.Printf("events seen:      %d\n", s.EventsSeen)
		fmt.Printf("events matched:   %d\n", s.EventsMatched)
		fmt.Printf("triggers:         %d\n", s.Triggers)
		fmt.Printf("complete matches: %d\n", s.CompleteMatches)
		fmt.Printf("reported:         %d\n", s.Reported)
		fmt.Printf("redundant:        %d\n", s.Redundant)
		fmt.Printf("history size:     %d (pruned %d, evicted %d)\n", s.HistorySize, s.HistoryPruned, s.HistoryEvicted)
		if s.TriggersAborted > 0 {
			fmt.Printf("triggers aborted: %d (budget exhausted; partial results marked truncated)\n", s.TriggersAborted)
		}
	}
	return nil
}
