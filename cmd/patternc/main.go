// Command patternc checks and describes OCEP pattern definitions: it
// parses and compiles a pattern source and prints the compiled form
// (classes, pattern-tree leaves, pairwise causal constraints, and the
// terminating event classes), or a position-annotated error.
//
// Usage:
//
//	patternc file.pat        # check a file
//	patternc -               # read from stdin
//	patternc -builtin name   # describe a built-in case-study pattern
//	                          (deadlock2, deadlock3, race, atomicity,
//	                           ordering)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ocep/internal/pattern"
	"ocep/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "patternc: %v\n", err)
		os.Exit(1)
	}
}

func builtinPattern(name string) (string, bool) {
	switch name {
	case "deadlock2":
		return workload.DeadlockPattern(2), true
	case "deadlock3":
		return workload.DeadlockPattern(3), true
	case "race":
		return workload.MsgRacePattern(), true
	case "atomicity":
		return workload.AtomicityPattern(), true
	case "ordering":
		return workload.OrderingPattern(), true
	default:
		return "", false
	}
}

func run() error {
	builtin := flag.String("builtin", "", "describe a built-in case-study pattern")
	format := flag.Bool("fmt", false, "print the pattern reformatted to canonical source instead of describing it")
	flag.Parse()

	var src string
	switch {
	case *builtin != "":
		s, ok := builtinPattern(*builtin)
		if !ok {
			return fmt.Errorf("unknown built-in %q (try deadlock2, deadlock3, race, atomicity, ordering)", *builtin)
		}
		src = s
		fmt.Printf("# built-in pattern %q\n%s\n", *builtin, src)
	case flag.NArg() == 1 && flag.Arg(0) == "-":
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			return fmt.Errorf("reading stdin: %w", err)
		}
		src = string(data)
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			return err
		}
		src = string(data)
	default:
		return fmt.Errorf("usage: patternc <file.pat | -> | -builtin name")
	}

	f, err := pattern.Parse(src)
	if err != nil {
		return err
	}
	if *format {
		fmt.Print(pattern.Format(f))
		return nil
	}
	compiled, err := pattern.Compile(f)
	if err != nil {
		return err
	}
	fmt.Print(pattern.Describe(compiled))
	return nil
}
