// Command ocepview renders a process-time diagram of a dumped POET trace
// file — the visualization role of the original POET tool. With a
// pattern, it replays the trace through the matcher and highlights the
// events of every reported match.
//
// Usage:
//
//	ocepview -dump run.poet [-from N] [-to N] [-width N] [-arrows]
//	         [-pattern file.pat | -builtin name]
//
// Windows wider than -width are rejected; use -from/-to to page through
// large dumps.
package main

import (
	"flag"
	"fmt"
	"os"

	"ocep/internal/core"
	"ocep/internal/event"
	"ocep/internal/pattern"
	"ocep/internal/poet"
	"ocep/internal/slice"
	"ocep/internal/view"
	"ocep/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "ocepview: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dump     = flag.String("dump", "", "POET dump file to render (required)")
		from     = flag.Int("from", 0, "first delivery index to render")
		to       = flag.Int("to", 0, "one past the last delivery index (0 = end)")
		width    = flag.Int("width", 120, "maximum event columns")
		arrows   = flag.Bool("arrows", false, "list message arrows inside the window")
		patFile  = flag.String("pattern", "", "pattern file: highlight matched events")
		builtin  = flag.String("builtin", "", "built-in pattern (deadlock2, deadlock3, race, atomicity, ordering)")
		sliceOut = flag.String("slice", "", "write the causal slice of the matched events to this dump file (requires a pattern; .gz compresses)")
	)
	flag.Parse()
	if *dump == "" {
		return fmt.Errorf("a dump file is required: -dump run.poet")
	}

	collector := poet.NewCollector()
	if _, err := collector.ReloadFile(*dump); err != nil {
		return err
	}
	st := collector.Store()
	ordered := collector.Ordered()

	var marks map[event.ID]bool
	src := ""
	switch {
	case *patFile != "":
		data, err := os.ReadFile(*patFile)
		if err != nil {
			return err
		}
		src = string(data)
	case *builtin != "":
		switch *builtin {
		case "deadlock2":
			src = workload.DeadlockPattern(2)
		case "deadlock3":
			src = workload.DeadlockPattern(3)
		case "race":
			src = workload.MsgRacePattern()
		case "atomicity":
			src = workload.AtomicityPattern()
		case "ordering":
			src = workload.OrderingPattern()
		default:
			return fmt.Errorf("unknown built-in %q", *builtin)
		}
	}
	if src != "" {
		f, err := pattern.Parse(src)
		if err != nil {
			return err
		}
		pat, err := pattern.Compile(f)
		if err != nil {
			return err
		}
		m := core.NewMatcherOn(pat, st, core.Options{})
		var matched [][]*event.Event
		for _, e := range ordered {
			got, err := m.Feed(e)
			if err != nil {
				return err
			}
			for _, mm := range got {
				matched = append(matched, mm.Events)
			}
		}
		marks = view.MarksOf(matched)
		fmt.Printf("pattern matched %d reported occurrences (%d events highlighted)\n",
			len(matched), len(marks))
		if *sliceOut != "" {
			if len(matched) == 0 {
				return fmt.Errorf("no matches: nothing to slice")
			}
			var all []*event.Event
			for _, mm := range matched {
				all = append(all, mm...)
			}
			cut, err := slice.Of(st, all)
			if err != nil {
				return err
			}
			sc, err := cut.Replay(st, ordered)
			if err != nil {
				return err
			}
			if err := sc.DumpFile(*sliceOut); err != nil {
				return err
			}
			fmt.Printf("causal slice: %d of %d events written to %s\n",
				cut.Size(), st.TotalEvents(), *sliceOut)
		}
	} else if *sliceOut != "" {
		return fmt.Errorf("-slice requires a pattern (-pattern or -builtin)")
	}

	out, err := view.Render(st, ordered, view.Options{
		From: *from, To: *to, MaxWidth: *width,
		Marks: marks, Arrows: *arrows,
	})
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}
