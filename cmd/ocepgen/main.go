// Command ocepgen drives one of the paper's case-study workloads against
// a live poetd server, so the full distributed pipeline can be exercised
// by hand:
//
//	poetd -listen :7524                                  # terminal 1
//	ocepmon -addr :7524 -builtin ordering                # terminal 2
//	ocepgen -addr :7524 -case ordering -traces 20        # terminal 3
//
// Usage:
//
//	ocepgen -addr host:port -case deadlock|races|atomicity|ordering
//	        [-traces N] [-events N] [-bug 0.01] [-cycle 2] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"

	"ocep"
	"ocep/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ocepgen: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:7524", "poetd server address")
		caseName = flag.String("case", "ordering", "workload: deadlock, races, atomicity, ordering")
		traces   = flag.Int("traces", 10, "process/thread count")
		events   = flag.Int("events", 50_000, "approximate event count")
		bugProb  = flag.Float64("bug", 0.01, "violation probability")
		cycleLen = flag.Int("cycle", 2, "deadlock cycle length")
		seed     = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	if *traces < 2 {
		return fmt.Errorf("-traces must be at least 2 (got %d)", *traces)
	}
	if *caseName == "races" && *traces < 3 {
		return fmt.Errorf("the races case needs at least 3 traces (got %d)", *traces)
	}
	if *events < 1 {
		return fmt.Errorf("-events must be positive (got %d)", *events)
	}
	if *cycleLen < 2 {
		return fmt.Errorf("-cycle must be at least 2 (got %d)", *cycleLen)
	}

	rep, err := ocep.DialReporter(*addr)
	if err != nil {
		return err
	}
	defer rep.Close()
	// The reporter is internally locked and buffers events until the
	// server acknowledges them, so the workload's concurrent ranks can
	// report straight into it.
	sink := rep

	var res workload.Result
	switch *caseName {
	case "deadlock":
		ranks := *traces - *traces%*cycleLen
		if ranks < *cycleLen {
			ranks = *cycleLen
		}
		rounds := *events / (3 * ranks)
		res, err = workload.GenDeadlock(workload.DeadlockConfig{
			Ranks: ranks, CycleLen: *cycleLen, Rounds: rounds,
			BugProb: *bugProb, Seed: *seed, Sink: sink,
		})
	case "races":
		waves := *events / (2 * (*traces - 1))
		res, err = workload.GenMsgRace(workload.MsgRaceConfig{
			Ranks: *traces, Waves: waves, Sink: sink,
		})
	case "atomicity":
		iters := *events / (8 * *traces)
		res, err = workload.GenAtomicity(workload.AtomicityConfig{
			Threads: *traces, Iterations: iters,
			BugProb: *bugProb, Seed: *seed, Sink: sink,
		})
	case "ordering":
		perSession := (*events/(*traces-1) - 7) / 2
		if perSession < 0 {
			perSession = 0
		}
		res, err = workload.GenReplication(workload.ReplicationConfig{
			Followers: *traces - 1, UpdatesPerSession: perSession,
			BugProb: *bugProb, Seed: *seed, Sink: sink,
		})
	default:
		return fmt.Errorf("unknown case %q", *caseName)
	}
	if err != nil {
		return err
	}
	// Wait for the server to acknowledge everything: Report is buffered,
	// and a fast exit must not outrun the acked stream.
	if err := rep.Flush(); err != nil {
		return fmt.Errorf("flushing reported events: %w", err)
	}
	log.Printf("done: %d events reported, %d violations seeded", res.Events, len(res.Markers))
	for _, m := range res.Markers {
		log.Printf("  seeded: %s", m)
	}
	return nil
}
