package ocep_test

// Differential fault test: a monitored run whose every TCP session is
// degraded by a fault-injection proxy (mid-stream resets, partial
// writes, added latency) must report exactly the match set and coverage
// of a fault-free in-process run over the same event sequence — the
// wire layer's exactly-once contract, end to end.

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"ocep"
	"ocep/internal/faultnet"
	"ocep/internal/workload"
)

// captureSink records the raw events of one workload run, freezing a
// sequence that both the clean and the faulty paths then replay: the
// generators schedule goroutines nondeterministically, so the capture —
// not the generator — is the common input.
type captureSink struct {
	mu     sync.Mutex
	events []ocep.RawEvent
}

func (s *captureSink) Report(e ocep.RawEvent) error {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
	return nil
}

// matchSignatures canonicalizes a match set for comparison: each match
// becomes its sorted "trace#index" leaf list, and the set is sorted.
// Trace names, not trace IDs, anchor the comparison so it is
// independent of either side's registration order.
func matchSignatures(matches []ocep.Match, name func(ocep.TraceID) string) []string {
	sigs := make([]string, 0, len(matches))
	for _, m := range matches {
		parts := make([]string, 0, len(m.Events))
		for _, e := range m.Events {
			parts = append(parts, fmt.Sprintf("%s#%d", name(e.ID.Trace), e.ID.Index))
		}
		sigs = append(sigs, strings.Join(parts, " "))
	}
	sort.Strings(sigs)
	return sigs
}

func coverageSignatures(pairs []ocep.CoveredPair, name func(ocep.TraceID) string) []string {
	sigs := make([]string, 0, len(pairs))
	for _, p := range pairs {
		sigs = append(sigs, fmt.Sprintf("leaf%d@%s", p.Leaf, name(p.Trace)))
	}
	sort.Strings(sigs)
	return sigs
}

// waitCounter blocks until a telemetry counter reaches target — the
// event-driven replacement for sleep-polling on pipeline state: the
// counter wakes the waiter on the increment that crosses the target,
// so convergence is detected microseconds after it happens instead of
// at the next poll tick.
func waitCounter(t *testing.T, what string, c *ocep.MetricCounter, target int64) {
	t.Helper()
	if !c.WaitAtLeast(target, 15*time.Second) {
		t.Fatalf("timed out waiting for %s (counter at %d, want %d)", what, c.Value(), target)
	}
}

// runCleanBaseline feeds the captured sequence to an in-process
// collector with a synchronously attached monitor — no wire, no faults.
func runCleanBaseline(t *testing.T, patternSrc string, events []ocep.RawEvent) (matchSigs, covSigs []string) {
	t.Helper()
	matchSigs, covSigs, _ = runCleanBaselineStats(t, patternSrc, events)
	return matchSigs, covSigs
}

// runCleanBaselineStats is runCleanBaseline plus the baseline matcher's
// final Stats, for differentials that also compare search accounting.
func runCleanBaselineStats(t *testing.T, patternSrc string, events []ocep.RawEvent) (matchSigs, covSigs []string, stats ocep.MatcherStats) {
	t.Helper()
	reg := ocep.NewRegistry()
	collector := ocep.NewCollector()
	collector.InstrumentMetrics(reg)
	var mu sync.Mutex
	var matches []ocep.Match
	mon, err := ocep.NewMonitor(patternSrc,
		ocep.WithReportAll(),
		ocep.WithMatchHandler(func(m ocep.Match) {
			mu.Lock()
			matches = append(matches, m)
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	mon.Attach(collector)
	for _, e := range events {
		if err := collector.Report(e); err != nil {
			t.Fatalf("clean report: %v", err)
		}
	}
	waitCounter(t, "clean delivery", reg.FindCounter("poet_delivered_events_total"), int64(len(events)))
	if err := mon.Err(); err != nil {
		t.Fatalf("clean monitor: %v", err)
	}
	name := collector.Store().TraceName
	return matchSignatures(matches, name), coverageSignatures(mon.Coverage(), name), mon.Stats()
}

// runFaultyWire replays the same sequence over TCP with both sessions
// proxied through faultnet: the reporter's and the monitor's links are
// chunked into tiny partial writes and repeatedly reset mid-stream
// while the events flow.
func runFaultyWire(t *testing.T, patternSrc string, events []ocep.RawEvent) (matchSigs, covSigs []string) {
	t.Helper()
	reg := ocep.NewRegistry()
	collector := ocep.NewCollector()
	collector.InstrumentMetrics(reg)
	srv := ocep.NewServer(collector, t.Logf)
	srv.SetWireTiming(10*time.Millisecond, 20*time.Millisecond, 2*time.Second)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	repProxy, err := faultnet.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer repProxy.Close()
	monProxy, err := faultnet.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer monProxy.Close()
	// Partial writes on both links; enough of a gap that resets land
	// while frames are in flight.
	repProxy.SetChunk(16, 20*time.Microsecond)
	monProxy.SetChunk(16, 20*time.Microsecond)

	rep, err := ocep.DialReporter(repProxy.Addr(),
		ocep.WithReporterBackoff(2*time.Millisecond, 50*time.Millisecond),
		ocep.WithReporterHeartbeat(20*time.Millisecond),
		ocep.WithReporterReconnect(15*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	cli, err := ocep.DialMonitor(monProxy.Addr(),
		ocep.WithMonitorReconnect(15*time.Second),
		ocep.WithMonitorBackoff(2*time.Millisecond, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	var mu sync.Mutex
	var matches []ocep.Match
	mon, err := ocep.NewMonitor(patternSrc,
		ocep.WithReportAll(),
		ocep.WithMetrics(reg),
		ocep.WithMatchHandler(func(m ocep.Match) {
			mu.Lock()
			matches = append(matches, m)
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() { runDone <- mon.Run(cli) }()

	// Fault injection is interleaved with the traffic itself: every 40
	// events both live sessions are reset mid-stream, with a short pause
	// first so frames are genuinely in flight when the cut lands. (A
	// wall-clock injector is too coarse here — a small run finishes
	// between ticks and the test proves nothing.)
	for i, e := range events {
		if i > 0 && i%40 == 0 {
			time.Sleep(15 * time.Millisecond)
			repProxy.CutAll()
			monProxy.CutAll()
		}
		if err := rep.Report(e); err != nil {
			t.Fatalf("faulty report: %v", err)
		}
	}
	// No more cuts past this point, so the drain is not racing a fault:
	// require full convergence — every event ingested exactly once and
	// matched.
	if err := rep.Flush(); err != nil {
		t.Fatalf("faulty flush: %v", err)
	}
	waitCounter(t, "faulty delivery", reg.FindCounter("poet_delivered_events_total"), int64(len(events)))
	waitCounter(t, "monitor to consume the stream", reg.FindCounter("ocep_monitor_events_total"), int64(len(events)))

	// Graceful shutdown: the server drains and sends End, the monitor's
	// Run returns nil. An error here means the faults leaked out.
	if err := srv.Close(); err != nil {
		t.Fatalf("server close: %v", err)
	}
	if err := <-runDone; err != nil {
		t.Fatalf("monitor run under faults: %v", err)
	}

	repStats, monStats := rep.Stats(), cli.Stats()
	t.Logf("faulty run: reporter %+v, monitor %+v, proxies rep=%+v mon=%+v",
		repStats, monStats, repProxy.Stats(), monProxy.Stats())
	if monStats.Received != len(events) {
		t.Fatalf("monitor received %d events, want exactly %d", monStats.Received, len(events))
	}
	if repStats.Reconnects == 0 && monStats.Reconnects == 0 {
		t.Fatal("no session was ever interrupted; the fault injection proved nothing")
	}

	name := collector.Store().TraceName
	return matchSignatures(matches, name), coverageSignatures(mon.Coverage(), name)
}

// TestFaultyWireRunMatchesFaultFreeRun is the differential acceptance
// test for the fault-tolerant wire layer: one captured workload, two
// runs — in-process fault-free versus TCP-with-injected-faults — and
// the reported match sets and coverage footprints must be identical.
func TestFaultyWireRunMatchesFaultFreeRun(t *testing.T) {
	sink := &captureSink{}
	if _, err := workload.GenMsgRace(workload.MsgRaceConfig{Ranks: 5, Waves: 20, Sink: sink}); err != nil {
		t.Fatal(err)
	}
	events := sink.events
	if len(events) == 0 {
		t.Fatal("workload produced no events")
	}
	patternSrc := workload.MsgRacePattern()

	cleanMatches, cleanCov := runCleanBaseline(t, patternSrc, events)
	faultMatches, faultCov := runFaultyWire(t, patternSrc, events)

	if len(cleanMatches) == 0 {
		t.Fatal("fault-free run reported no matches; the differential comparison is vacuous")
	}
	if !equalStrings(cleanMatches, faultMatches) {
		t.Errorf("match sets differ:\nfault-free (%d): %v\nfaulty (%d): %v",
			len(cleanMatches), cleanMatches, len(faultMatches), faultMatches)
	}
	if !equalStrings(cleanCov, faultCov) {
		t.Errorf("coverage differs:\nfault-free: %v\nfaulty: %v", cleanCov, faultCov)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
