package ocep_test

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"ocep"
	"ocep/internal/baseline"
	"ocep/internal/core"
	"ocep/internal/event"
	"ocep/internal/pattern"
	"ocep/internal/poet"
	"ocep/internal/workload"
)

// recordingSink captures raw events in arrival order while forwarding
// them to a validating throwaway collector, so the exact same stream can
// be replayed serially into several delivery configurations. The workload
// generators run concurrent goroutines, so two generator invocations
// produce different arrival orders; recording once removes that
// nondeterminism from the differential.
type recordingSink struct {
	mu  sync.Mutex
	c   *poet.Collector
	raw []poet.RawEvent
}

func (r *recordingSink) Report(ev poet.RawEvent) error {
	r.mu.Lock()
	r.raw = append(r.raw, ev)
	r.mu.Unlock()
	return r.c.Report(ev)
}

// deliveryCase is one workload for the sync-vs-async differential. The
// sizes stay small because the test cross-checks against the exhaustive
// baseline oracle.
type deliveryCase struct {
	name     string
	pattern  string
	generate func(sink *recordingSink) error
}

func deliveryCases() []deliveryCase {
	return []deliveryCase{
		{
			name:    "deadlock",
			pattern: workload.DeadlockPattern(2),
			generate: func(sink *recordingSink) error {
				_, err := workload.GenDeadlock(workload.DeadlockConfig{
					Ranks: 4, CycleLen: 2, Rounds: 40, BugProb: 0.2, Seed: 7, Sink: sink,
				})
				return err
			},
		},
		{
			name:    "msgrace",
			pattern: workload.MsgRacePattern(),
			generate: func(sink *recordingSink) error {
				_, err := workload.GenMsgRace(workload.MsgRaceConfig{
					Ranks: 4, Waves: 4, Sink: sink,
				})
				return err
			},
		},
		{
			name:    "atomicity",
			pattern: workload.AtomicityPattern(),
			generate: func(sink *recordingSink) error {
				_, err := workload.GenAtomicity(workload.AtomicityConfig{
					Threads: 3, Iterations: 10, BugProb: 0.25, Seed: 7, Sink: sink,
				})
				return err
			},
		},
		{
			name:    "ordering",
			pattern: workload.OrderingPattern(),
			generate: func(sink *recordingSink) error {
				_, err := workload.GenReplication(workload.ReplicationConfig{
					Followers: 3, UpdatesPerSession: 2, BugProb: 0.5, Seed: 7, Sink: sink,
				})
				return err
			},
		},
	}
}

func recordWorkload(t *testing.T, c deliveryCase) []poet.RawEvent {
	t.Helper()
	sink := &recordingSink{c: poet.NewCollector()}
	if err := c.generate(sink); err != nil {
		t.Fatalf("generating %s workload: %v", c.name, err)
	}
	if !sink.c.Drained() {
		t.Fatalf("%s workload left %d events pending", c.name, sink.c.Pending())
	}
	return sink.raw
}

// matchKey canonicalizes a match for set comparison.
func matchKey(m ocep.Match) string {
	parts := make([]string, len(m.Events))
	for leaf, e := range m.Events {
		parts[leaf] = fmt.Sprintf("%d:%d#%d", leaf, e.ID.Trace, e.ID.Index)
	}
	return strings.Join(parts, " ")
}

// deliveryRun is one serial replay of a recorded stream through a single
// monitor in the given delivery mode.
type deliveryRun struct {
	matches  []ocep.Match
	coverage []ocep.CoveredPair
	stats    ocep.MatcherStats
	store    *event.Store // the collector's store (for the oracle)
}

func (r deliveryRun) keys() []string {
	out := make([]string, len(r.matches))
	for i, m := range r.matches {
		out[i] = matchKey(m)
	}
	sort.Strings(out)
	return out
}

func runDeliveryMode(t *testing.T, raws []poet.RawEvent, patternSrc string, async bool) deliveryRun {
	t.Helper()
	var mu sync.Mutex
	var run deliveryRun
	opts := []ocep.Option{
		ocep.WithGuaranteedCoverage(),
		ocep.WithMatchHandler(func(m ocep.Match) {
			mu.Lock()
			run.matches = append(run.matches, m)
			mu.Unlock()
		}),
	}
	if async {
		opts = append(opts, ocep.WithAsyncDelivery(), ocep.WithQueueDepth(32), ocep.WithMaxBatch(8))
	}
	mon, err := ocep.NewMonitor(patternSrc, opts...)
	if err != nil {
		t.Fatalf("compiling pattern: %v", err)
	}
	c := ocep.NewCollector()
	mon.Attach(c)
	for _, raw := range raws {
		if err := c.Report(raw); err != nil {
			t.Fatalf("replaying: %v", err)
		}
	}
	c.Flush()
	if err := mon.Err(); err != nil {
		t.Fatalf("monitor error: %v", err)
	}
	run.coverage = mon.Coverage()
	run.stats = mon.Stats()
	run.store = c.Store()
	mon.Detach()
	c.Close()
	if len(run.matches) != run.stats.Reported {
		t.Fatalf("handler saw %d matches, stats report %d", len(run.matches), run.stats.Reported)
	}
	return run
}

func coverageSet(pairs []ocep.CoveredPair) map[[2]int]bool {
	cov := make(map[[2]int]bool, len(pairs))
	for _, p := range pairs {
		cov[[2]int{p.Leaf, int(p.Trace)}] = true
	}
	return cov
}

func coverageEqual(a, b map[[2]int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// TestDeliveryDifferential replays identical recorded workloads through a
// synchronous and an asynchronous monitor and requires byte-identical
// representative-match sets, identical coverage footprints, coverage
// equal to the exhaustive oracle's, and per-match soundness.
func TestDeliveryDifferential(t *testing.T) {
	for _, tc := range deliveryCases() {
		t.Run(tc.name, func(t *testing.T) {
			raws := recordWorkload(t, tc)
			if len(raws) == 0 {
				t.Fatal("workload produced no events")
			}
			syncRun := runDeliveryMode(t, raws, tc.pattern, false)
			asyncRun := runDeliveryMode(t, raws, tc.pattern, true)

			syncKeys, asyncKeys := syncRun.keys(), asyncRun.keys()
			if len(syncKeys) != len(asyncKeys) {
				t.Fatalf("sync reported %d matches, async %d", len(syncKeys), len(asyncKeys))
			}
			for i := range syncKeys {
				if syncKeys[i] != asyncKeys[i] {
					t.Fatalf("match sets diverge at %d:\n  sync  %s\n  async %s",
						i, syncKeys[i], asyncKeys[i])
				}
			}

			covSync := coverageSet(syncRun.coverage)
			covAsync := coverageSet(asyncRun.coverage)
			if !coverageEqual(covSync, covAsync) {
				t.Fatalf("coverage diverges: sync %d pairs, async %d pairs", len(covSync), len(covAsync))
			}

			f, err := pattern.Parse(tc.pattern)
			if err != nil {
				t.Fatal(err)
			}
			pat, err := pattern.Compile(f)
			if err != nil {
				t.Fatal(err)
			}
			oracle := baseline.Coverage(baseline.AllMatches(pat, syncRun.store))
			if !coverageEqual(covSync, oracle) {
				t.Fatalf("reported coverage (%d pairs) != oracle coverage (%d pairs)",
					len(covSync), len(oracle))
			}

			for _, m := range asyncRun.matches {
				if err := core.VerifyMatch(pat, m, syncRun.store.TraceName); err != nil {
					t.Fatalf("async match unsound: %v\n  %s", err, matchKey(m))
				}
			}

			if asyncRun.stats.EventsSeen != len(raws) {
				t.Fatalf("async monitor saw %d events, stream has %d", asyncRun.stats.EventsSeen, len(raws))
			}
		})
	}
}

// TestAsyncFlushDeterminism checks the drain contract: after Flush
// returns, the async monitor has processed every event the collector
// delivered before the call.
func TestAsyncFlushDeterminism(t *testing.T) {
	mon, err := ocep.NewMonitor(requestResponse, ocep.WithAsyncDelivery())
	if err != nil {
		t.Fatal(err)
	}
	c := ocep.NewCollector()
	mon.Attach(c)
	defer c.Close()
	for i := 1; i <= 500; i++ {
		typ := "request"
		if i%2 == 0 {
			typ = "response"
		}
		if err := c.Report(ocep.RawEvent{Trace: "p", Seq: i, Kind: ocep.KindInternal, Type: typ, Text: "x"}); err != nil {
			t.Fatal(err)
		}
		if i%100 == 0 {
			mon.Flush()
			if seen := mon.Stats().EventsSeen; seen != c.Delivered() {
				t.Fatalf("after flush at %d: monitor saw %d events, collector delivered %d",
					i, seen, c.Delivered())
			}
		}
	}
	st := mon.DeliveryStats()
	if st.Enqueued != 500 || st.Dropped != 0 {
		t.Fatalf("delivery stats %+v: want 500 enqueued, none dropped", st)
	}
	mon.Detach()
	if err := mon.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncDropPolicyRejected is the monitor-level drop-policy test: a
// matcher-backed monitor cannot tolerate a gapped stream (a drop would
// wedge its whole trace, not just lose matches), so NewMonitor must
// reject BackpressureDrop combined with WithAsyncDelivery instead of
// degrading into a latched feed error at runtime.
func TestAsyncDropPolicyRejected(t *testing.T) {
	_, err := ocep.NewMonitor(requestResponse,
		ocep.WithAsyncDelivery(), ocep.WithBackpressure(ocep.BackpressureDrop))
	if err == nil {
		t.Fatal("NewMonitor accepted WithAsyncDelivery + BackpressureDrop")
	}
	if !strings.Contains(err.Error(), "BackpressureDrop") {
		t.Fatalf("error does not name the rejected policy: %v", err)
	}
	// Without async delivery the policy is unused; construction succeeds.
	if _, err := ocep.NewMonitor(requestResponse, ocep.WithBackpressure(ocep.BackpressureDrop)); err != nil {
		t.Fatalf("sync monitor with drop policy set: %v", err)
	}
	// MonitorSet.Add surfaces the same rejection.
	set := ocep.NewMonitorSet(nil)
	if err := set.Add("gapped", requestResponse,
		ocep.WithAsyncDelivery(), ocep.WithBackpressure(ocep.BackpressureDrop)); err == nil {
		t.Fatal("MonitorSet.Add accepted WithAsyncDelivery + BackpressureDrop")
	}
}

// TestMonitorReattach checks that Attach on an already-attached monitor
// replaces the previous subscription cleanly: the old collector stops
// feeding the matcher (no duplicate-feed errors, no leaked delivery
// goroutine still enqueueing), and the monitor's state reflects only the
// new collector's stream.
func TestMonitorReattach(t *testing.T) {
	for _, mode := range []struct {
		name  string
		async bool
	}{{"sync", false}, {"async", true}} {
		t.Run(mode.name, func(t *testing.T) {
			opts := []ocep.Option{}
			if mode.async {
				opts = append(opts, ocep.WithAsyncDelivery())
			}
			mon, err := ocep.NewMonitor(requestResponse, opts...)
			if err != nil {
				t.Fatal(err)
			}
			report := func(c *ocep.Collector, from, n int) {
				t.Helper()
				for i := 0; i < n; i++ {
					typ := "request"
					if (from+i)%2 == 0 {
						typ = "response"
					}
					if err := c.Report(ocep.RawEvent{
						Trace: "p", Seq: from + i, Kind: ocep.KindInternal, Type: typ, Text: "x",
					}); err != nil {
						t.Fatal(err)
					}
				}
			}
			c1 := ocep.NewCollector()
			defer c1.Close()
			mon.Attach(c1)
			report(c1, 1, 10)
			mon.Flush()
			if seen := mon.Stats().EventsSeen; seen != 10 {
				t.Fatalf("first attachment saw %d events, want 10", seen)
			}

			c2 := ocep.NewCollector()
			defer c2.Close()
			mon.Attach(c2) // re-attach without an explicit Detach
			report(c2, 1, 4)
			// Later traffic on the old collector must not reach the monitor.
			report(c1, 11, 6)
			mon.Flush()
			if err := mon.Err(); err != nil {
				t.Fatalf("monitor error after re-attach: %v", err)
			}
			if seen := mon.Stats().EventsSeen; seen != 4 {
				t.Fatalf("after re-attach monitor saw %d events, want 4 (c2's stream only)", seen)
			}
			if mode.async {
				if st := mon.DeliveryStats(); st.Enqueued != 4 || st.Dropped != 0 {
					t.Fatalf("delivery stats after re-attach %+v: want 4 enqueued, none dropped", st)
				}
			}
			mon.Detach()
		})
	}
}

// TestMonitorSetReattachSharedDispatch is the class-index counterpart
// of TestMonitorReattach: a MonitorSet routed through the shared
// dispatcher is re-attached to a second collector, and every member —
// including one whose types never appear — must get fresh index entries
// and fresh matcher state. A stale entry from the first attachment
// would either leak the old collector's stream into the counters or
// leave a member unreachable in the rebuilt index.
func TestMonitorSetReattachSharedDispatch(t *testing.T) {
	var mu sync.Mutex
	counts := map[string]int{}
	set := ocep.NewMonitorSet(func(name string, _ ocep.Match) {
		mu.Lock()
		counts[name]++
		mu.Unlock()
	})
	if err := set.Add("rr", requestResponse, ocep.WithRepresentativeOnly()); err != nil {
		t.Fatal(err)
	}
	// A member subscribed to types neither stream carries: the index
	// must skip it on every event, across both attachments.
	if err := set.Add("quiet", `A := [*, never1, *]; B := [*, never2, *]; pattern := A -> B;`,
		ocep.WithRepresentativeOnly()); err != nil {
		t.Fatal(err)
	}
	report := func(c *ocep.Collector, from, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			typ := "request"
			if (from+i)%2 == 0 {
				typ = "response"
			}
			if err := c.Report(ocep.RawEvent{
				Trace: "p", Seq: from + i, Kind: ocep.KindInternal, Type: typ, Text: "x",
			}); err != nil {
				t.Fatal(err)
			}
		}
	}

	c1 := ocep.NewCollector()
	defer c1.Close()
	set.Attach(c1)
	report(c1, 1, 10)
	set.Flush()
	for name, st := range set.Stats() {
		if st.EventsSeen != 10 {
			t.Fatalf("first attachment: %s saw %d events, want 10", name, st.EventsSeen)
		}
	}
	d1 := set.DispatchStats()
	if d1.Events != 10 || d1.Members != 2 || d1.Visited != 10 || d1.Skipped != 10 {
		t.Fatalf("first attachment dispatch stats %+v: want 10 events, 2 members, 10 visited, 10 skipped", d1)
	}
	mu.Lock()
	firstMatches := counts["rr"]
	mu.Unlock()
	if firstMatches == 0 {
		t.Fatal("no matches on the first attachment: re-attach check would be vacuous")
	}

	c2 := ocep.NewCollector()
	defer c2.Close()
	set.Attach(c2) // re-attach without an explicit Detach
	report(c2, 1, 4)
	// Later traffic on the old collector must not reach any member.
	report(c1, 11, 6)
	set.Flush()
	if err := set.Err(); err != nil {
		t.Fatalf("set error after re-attach: %v", err)
	}
	for name, st := range set.Stats() {
		if st.EventsSeen != 4 {
			t.Fatalf("after re-attach %s saw %d events, want 4 (c2's stream only)", name, st.EventsSeen)
		}
	}
	d2 := set.DispatchStats()
	if d2.Events != 4 || d2.Members != 2 || d2.Visited != 4 || d2.Skipped != 4 {
		t.Fatalf("re-attach dispatch stats %+v: want 4 events, 2 members, 4 visited, 4 skipped", d2)
	}
	mu.Lock()
	second := counts["rr"] - firstMatches
	quiet := counts["quiet"]
	mu.Unlock()
	if second == 0 {
		t.Fatal("rr matched nothing on the re-attached stream: stale index entry?")
	}
	if quiet != 0 {
		t.Fatalf("quiet member reported %d matches; its types never occur", quiet)
	}
	set.Detach()
	if d := set.DispatchStats(); d != (ocep.DispatchStats{}) {
		t.Fatalf("dispatch stats after Detach %+v: want zero", d)
	}
}

// TestAsyncHandlerReentrancy checks the documented contract that an
// async onMatch handler may call the monitor's and the collector's read
// methods without deadlocking.
func TestAsyncHandlerReentrancy(t *testing.T) {
	var mon *ocep.Monitor
	var c *ocep.Collector
	var mu sync.Mutex
	calls := 0
	handler := func(m ocep.Match) {
		mu.Lock()
		calls++
		mu.Unlock()
		// Monitor read methods.
		_ = mon.Stats()
		_ = mon.Coverage()
		_ = mon.DeliveryStats()
		_ = mon.Explain(m)
		// Collector read methods — only safe from the async path.
		_ = c.Delivered()
		_ = c.TraceStats()
	}
	var err error
	mon, err = ocep.NewMonitor(requestResponse, ocep.WithAsyncDelivery(), ocep.WithMatchHandler(handler))
	if err != nil {
		t.Fatal(err)
	}
	c = ocep.NewCollector()
	mon.Attach(c)
	defer c.Close()
	for i := 1; i <= 40; i++ {
		typ := "request"
		if i%2 == 0 {
			typ = "response"
		}
		if err := c.Report(ocep.RawEvent{Trace: "p", Seq: i, Kind: ocep.KindInternal, Type: typ, Text: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	mon.Flush()
	mu.Lock()
	got := calls
	mu.Unlock()
	if got == 0 {
		t.Fatal("handler never ran")
	}
	if got != mon.Stats().Reported {
		t.Fatalf("handler ran %d times, stats report %d", got, mon.Stats().Reported)
	}
	mon.Detach()
}

// TestMonitorSetAsyncReentrancy checks the MonitorSet variant: the set
// callback may call set read methods from the async delivery goroutines.
func TestMonitorSetAsyncReentrancy(t *testing.T) {
	var set *ocep.MonitorSet
	var mu sync.Mutex
	seen := make(map[string]int)
	set = ocep.NewMonitorSet(func(name string, m ocep.Match) {
		mu.Lock()
		seen[name]++
		mu.Unlock()
		_ = set.Stats()
		_ = set.DeliveryStats()
		_ = set.Names()
	})
	if err := set.Add("reqresp", requestResponse, ocep.WithAsyncDelivery()); err != nil {
		t.Fatal(err)
	}
	if err := set.Add("reqresp-sync", requestResponse); err != nil {
		t.Fatal(err)
	}
	c := ocep.NewCollector()
	set.Attach(c)
	defer c.Close()
	for i := 1; i <= 20; i++ {
		typ := "request"
		if i%2 == 0 {
			typ = "response"
		}
		if err := c.Report(ocep.RawEvent{Trace: "p", Seq: i, Kind: ocep.KindInternal, Type: typ, Text: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	set.Flush()
	if err := set.Err(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	asyncSeen, syncSeen := seen["reqresp"], seen["reqresp-sync"]
	mu.Unlock()
	if asyncSeen == 0 {
		t.Fatal("async member never reported")
	}
	if asyncSeen != syncSeen {
		t.Fatalf("async member reported %d matches, sync member %d", asyncSeen, syncSeen)
	}
	set.Detach()
}
